type op =
  | Insert of { slot : int; record : bytes }
  | Delete of { slot : int; before : bytes }
  | Update_range of { slot : int; offset : int; before : bytes; after : bytes }
  | Update_full of { slot : int; before : bytes; after : bytes }

type t = { txid : int; page : int; op : op }

(* Wire format: tag:u8 txid:u32 page:u32 slot:u16, then per-op payload.
   All multi-byte fields little-endian. *)

let header_size = 11

let encoded_size t =
  header_size
  +
  match t.op with
  | Insert { record; _ } -> 2 + Bytes.length record
  | Delete { before; _ } -> 2 + Bytes.length before
  | Update_range { before; after; _ } -> 2 + 2 + Bytes.length before + Bytes.length after
  | Update_full { before; after; _ } -> 2 + 2 + Bytes.length before + Bytes.length after

let add_u16 buf n =
  if n < 0 || n > 0xFFFF then invalid_arg "Log_record: u16 out of range";
  Buffer.add_uint16_le buf n

let add_u32 buf n =
  if n < 0 || n > 0xFFFFFFFF then invalid_arg "Log_record: u32 out of range";
  Buffer.add_int32_le buf (Int32.of_int n)

let add_sized buf b =
  add_u16 buf (Bytes.length b);
  Buffer.add_bytes buf b

let slot_of = function
  | Insert { slot; _ } | Delete { slot; _ } | Update_range { slot; _ } | Update_full { slot; _ }
    -> slot

let encode buf t =
  let tag =
    match t.op with
    | Insert _ -> 0
    | Delete _ -> 1
    | Update_range _ -> 2
    | Update_full _ -> 3
  in
  Buffer.add_uint8 buf tag;
  add_u32 buf t.txid;
  add_u32 buf t.page;
  add_u16 buf (slot_of t.op);
  match t.op with
  | Insert { record; _ } -> add_sized buf record
  | Delete { before; _ } -> add_sized buf before
  | Update_range { offset; before; after; _ } ->
      if Bytes.length before <> Bytes.length after then
        invalid_arg "Log_record.encode: update_range images differ in length";
      add_u16 buf offset;
      add_u16 buf (Bytes.length before);
      Buffer.add_bytes buf before;
      Buffer.add_bytes buf after
  | Update_full { before; after; _ } ->
      add_sized buf before;
      add_sized buf after

let get_u16 b pos = Bytes.get_uint16_le b pos
let get_u32 b pos = Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFFFFFF

let get_sized b pos =
  let len = get_u16 b pos in
  (Bytes.sub b (pos + 2) len, pos + 2 + len)

let decode b ~pos =
  if pos + header_size > Bytes.length b then invalid_arg "Log_record.decode: truncated header";
  let tag = Bytes.get_uint8 b pos in
  let txid = get_u32 b (pos + 1) in
  let page = get_u32 b (pos + 5) in
  let slot = get_u16 b (pos + 9) in
  let pos = pos + header_size in
  let op, pos =
    match tag with
    | 0 ->
        let record, pos = get_sized b pos in
        (Insert { slot; record }, pos)
    | 1 ->
        let before, pos = get_sized b pos in
        (Delete { slot; before }, pos)
    | 2 ->
        let offset = get_u16 b pos in
        let len = get_u16 b (pos + 2) in
        let before = Bytes.sub b (pos + 4) len in
        let after = Bytes.sub b (pos + 4 + len) len in
        (Update_range { slot; offset; before; after }, pos + 4 + (2 * len))
    | 3 ->
        let before, pos = get_sized b pos in
        let after, pos = get_sized b pos in
        (Update_full { slot; before; after }, pos)
    | _ -> invalid_arg "Log_record.decode: unknown tag"
  in
  ({ txid; page; op }, pos)

let apply page t =
  match t.op with
  | Insert { slot; record } -> Storage.Page.insert_at page slot record
  | Delete { slot; _ } -> Storage.Page.delete page slot
  | Update_range { slot; offset; after; _ } ->
      Storage.Page.update_bytes page ~slot ~offset after
  | Update_full { slot; after; _ } -> Storage.Page.update page slot after

let unapply page t =
  match t.op with
  | Insert { slot; _ } -> Storage.Page.delete page slot
  | Delete { slot; before } -> Storage.Page.insert_at page slot before
  | Update_range { slot; offset; before; _ } ->
      Storage.Page.update_bytes page ~slot ~offset before
  | Update_full { slot; before; _ } -> Storage.Page.update page slot before

let op_name t =
  match t.op with
  | Insert _ -> "insert"
  | Delete _ -> "delete"
  | Update_range _ | Update_full _ -> "update"

let pp ppf t =
  Format.fprintf ppf "{tx=%d page=%d slot=%d %s %dB}" t.txid t.page (slot_of t.op)
    (op_name t) (encoded_size t)
