(** System-wide transaction log (Section 5.1).

    Its only job — like the transaction log of the Postgres no-overwrite
    storage the paper cites — is to record the start and outcome of every
    transaction so that, after a crash, the status of any transaction whose
    physiological log records survive in flash can be decided. No per-update
    records are ever written here; those live in the in-page logs.

    Commit and abort records are forced immediately (they are the durability
    point); begin records may ride along buffered. *)

type status = Active | Committed | Aborted

type t

val create : Device.Flash_device.t -> first_block:int -> num_blocks:int -> t

val recover : Device.Flash_device.t -> first_block:int -> num_blocks:int -> t * int list
(** Rebuild the status table from flash. Transactions that were active at
    the crash are closed with an abort record (written back to the log);
    their ids are returned. *)

val log_begin : t -> int -> unit

val log_commit : ?force:bool -> t -> int -> unit
(** [force] defaults to true (the durability point). *)

val defer_commit : t -> int -> unit
(** Group commit: record the commit but keep its record out of the log
    buffer — a begin-record force or a compaction must not carry it to
    flash before the batch's data records. Until {!flush_deferred} runs,
    a crash rolls the transaction back, so {!status} keeps answering
    [Active]: merges must carry its in-page records forward, not bake
    them into home pages. *)

val flush_deferred : t -> unit
(** Append every deferred commit record, in commit order. Call after the
    batch's data records have been flushed, before {!publish} and the
    barrier. *)

val log_abort : t -> int -> unit

val status : t -> int -> status
(** Status of a transaction id. Id 0 (non-transactional work) and ids
    unknown to the log (compacted-away history) are [Committed]. *)

val active : t -> int list
val max_txid : t -> int
(** Highest transaction id the log remembers; 0 if none. *)

val durable_sectors : t -> int
(** Log sectors submitted to flash so far — the durable watermark a fuzzy
    checkpoint records. Deferred commit records (still outside the
    buffer) are not counted. *)

val publish : t -> unit
(** Submit the buffered partial sector without waiting (see
    {!Seq_log.publish}). *)

val force : t -> unit
