(** Persistent logical-to-physical mapping metadata.

    The paper (Section 3.3) notes that the mapping of data pages to erase
    units is "maintained as meta-data by the flash translation layer" and
    only changes on merges, so its maintenance cost is low. This module is
    that metadata store: an append-only log of mapping events in a small
    reserved flash region, compacted into a snapshot when full. Replaying
    it after a crash (together with a scan of the in-page log sectors)
    reconstructs the storage manager's state. *)

type event =
  | Page_alloc of { page : int; eu : int; idx : int }
      (** logical page placed at data slot [idx] of erase unit [eu] *)
  | Merge of { old_eu : int; new_eu : int }
      (** all pages of [old_eu] moved, same slots, to [new_eu] *)
  | Overflow_alloc of { eu : int }  (** [eu] becomes an overflow log area *)
  | Overflow_assign of { data_eu : int; sector : int }
      (** flat sector address [sector] (inside an overflow area) now holds
          log records belonging to [data_eu] *)
  | Overflow_release of { data_eu : int }
      (** [data_eu] was merged; its overflow sectors are dead *)
  | Overflow_free of { eu : int }  (** overflow area erased and freed *)
  | Remap of { virt : int; phys : int }
      (** bad-block manager: virtual erase unit [virt] is now backed by
          physical block [phys] *)
  | Retire of { block : int }  (** physical block permanently retired *)
  | Degraded  (** spare pool exhausted: device is read-only from here on *)
  | Ckpt_eu of { eu : int; used_log : int; overflow : int; counts : (int * int) list }
      (** fuzzy-checkpoint coverage of one erase unit: at checkpoint time
          [eu] had [used_log] in-region log sectors and [overflow]
          overflow sectors on flash, holding [counts] records per
          transaction ([(txid, n)] pairs; chunked — several [Ckpt_eu]
          records for one [eu] accumulate). Recovery can trust these and
          re-read only sectors written {e after} the checkpoint *)
  | Ckpt of { active : int list; trx_watermark : int }
      (** fuzzy-checkpoint footer: the active-transaction table and the
          durable transaction-log watermark (sectors written) when the
          checkpoint was taken. Its arrival promotes the [Ckpt_eu]
          records since the previous footer into the effective
          checkpoint; a torn checkpoint (footer lost) is simply ignored *)

type t

val create : Device.Flash_device.t -> first_block:int -> num_blocks:int -> t

val recover : Device.Flash_device.t -> first_block:int -> num_blocks:int -> t * event list
(** Durable events in append order. *)

val log : t -> event -> unit
(** Appended buffered; see {!force}. When the region fills up the caller's
    snapshot function (set via {!set_snapshot}) provides the compacted
    state. *)

val publish : t -> unit
(** Submit the buffered partial sector without waiting (see
    {!Seq_log.publish}). *)

val force : t -> unit

val set_snapshot : t -> (unit -> event list) -> unit
(** Register the function that dumps the current state as a minimal event
    list, used for compaction. Must be set before the region can fill. *)

(** {1 Exception-safe callers}

    The merge path buffers several events before forcing them as one
    atomic step. If the merge fails part-way (an injected power loss, a
    worn-out block), the buffered events describe a merge that never
    happened; {!mark}/{!rollback} discard them. *)

type mark

val mark : t -> mark

val rollback : t -> mark -> bool
(** Discard events logged since [mark]; [false] if a sector was forced in
    between (e.g. the region compacted), in which case use {!recompact}
    once the in-memory state has been restored. *)

val recompact : t -> unit
(** Rewrite the region from the registered snapshot function — the
    recovery hammer when {!rollback} cannot undo buffered events. *)

val encode : event -> bytes
val decode : bytes -> event
