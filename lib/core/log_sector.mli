(** In-memory log sectors.

    The IPL buffer manager associates one of these with every dirty page
    in the buffer pool (Figure 2 of the paper). It accumulates that page's
    physiological log records until it fills up — at which point the
    storage manager writes its serialised image to a flash log sector in
    the page's erase unit — or until the page is evicted or a transaction
    commits, which force an early flush. *)

type t

exception Record_too_large of int
(** Raised when a single record cannot fit even an empty sector; carries
    the record's encoded size. *)

exception Corrupt
(** Raised by {!deserialize} when a flash log sector's checksum does not
    match — a torn write or bit rot. *)

val create : capacity:int -> t
(** [capacity] is the flash sector size; usable payload is
    [capacity - header_size]. *)

val header_size : int

val add : t -> Log_record.t -> [ `Added | `Full ]
(** [`Full] means the record was {e not} added: flush and retry. *)

val records : t -> Log_record.t list
(** In arrival order. *)

val count : t -> int
val bytes_used : t -> int
(** Including the sector header. *)

val is_empty : t -> bool
val clear : t -> unit

val remove_txn : t -> int -> Log_record.t list
(** Remove and return (in arrival order) all records of a transaction —
    the in-memory half of rolling back an abort. *)

val txids : t -> int list
(** Distinct transaction ids present, ascending. *)

val serialize : t -> bytes
(** Exactly [capacity] bytes:
    [count:u16, used:u16, crc32:u32, records..., 0xff pad]. *)

val deserialize : bytes -> Log_record.t list
(** Parse a flash log sector image. Raises [Invalid_argument] if
    malformed and {!Corrupt} if the checksum fails. *)
