module Dev = Device.Flash_device
module Config = Flash_sim.Flash_config

(* Sector format: used:u16 (bytes of payload), crc:u32 (CRC-32 of the
   payload), then records, each [len:u16][bytes]. 0xffff in the "used"
   field (erased flash) marks an unwritten sector. The checksum lets
   recovery detect a torn or bit-flipped sector and discard its records
   instead of replaying garbage. *)

type t = {
  dev : Dev.t;
  first_block : int;
  num_blocks : int;
  sector_size : int;
  first_sector : int;
  sectors_per_block : int;
  total_sectors : int;
  buf : Buffer.t;  (* payload of the sector being assembled *)
  mutable next_sector : int;  (* index within the region *)
  mutable pending : Dev.tag list;  (* published, not yet settled *)
}

exception Record_too_large of int

let header_size = 6

let make dev ~first_block ~num_blocks =
  if num_blocks <= 0 then invalid_arg "Seq_log: need at least one block";
  let c = Dev.config dev in
  let spb = Config.sectors_per_block c in
  {
    dev;
    first_block;
    num_blocks;
    sector_size = c.Config.sector_size;
    first_sector = Dev.sector_of_block dev first_block;
    sectors_per_block = spb;
    total_sectors = spb * num_blocks;
    buf = Buffer.create c.Config.sector_size;
    next_sector = 0;
    pending = [];
  }

(* Logical append index -> physical sector: round-robin across the
   region's blocks (index i lives in block [i mod num_blocks] at offset
   [i / num_blocks]). Since device blocks stripe across chips,
   consecutive forces program different chips instead of hammering the
   region's first block — the log's force traffic spreads over the
   channels like everything else. Recovery scans the same index order,
   so the forward scan for the append position is unchanged. *)
let sector_addr t i =
  t.first_sector
  + (i mod t.num_blocks * t.sectors_per_block)
  + (i / t.num_blocks)

let erase_region t =
  for b = t.first_block to t.first_block + t.num_blocks - 1 do
    Dev.erase_block t.dev b
  done

let create dev ~first_block ~num_blocks =
  let t = make dev ~first_block ~num_blocks in
  erase_region t;
  t

let sector_used t i =
  Dev.sector_state t.dev (sector_addr t i) <> Flash_sim.Flash_chip.Free

let recover dev ~first_block ~num_blocks =
  let t = make dev ~first_block ~num_blocks in
  let rec scan i = if i < t.total_sectors && sector_used t i then scan (i + 1) else i in
  t.next_sector <- scan 0;
  t

(* Publish the buffered records: assemble and submit the sector program
   without waiting for it. The caller owes a [settle] (or a device-wide
   barrier) before treating the records as durable; splitting the two
   lets a commit publish its metadata and transaction-status sectors on
   different chips and pay for both with a single wait. *)
let publish t =
  if Buffer.length t.buf > 0 then begin
    let payload = Buffer.to_bytes t.buf in
    let sector = Bytes.make t.sector_size '\xff' in
    Bytes.set_uint16_le sector 0 (Bytes.length payload);
    Bytes.blit payload 0 sector header_size (Bytes.length payload);
    let crc = Ipl_util.Checksum.crc32 sector ~pos:header_size ~len:(Bytes.length payload) in
    Bytes.set_int32_le sector 2 (Int32.of_int crc);
    let tag =
      Dev.submit_write ~cls:Dev.Log_flush t.dev ~sector:(sector_addr t t.next_sector)
        sector
    in
    t.pending <- tag :: t.pending;
    t.next_sector <- t.next_sector + 1;
    Buffer.clear t.buf
  end

(* Wait out every published-but-unsettled sector program of THIS log —
   the precise durability wait. Unlike a device-wide barrier it does not
   stall on unrelated in-flight traffic, so a write-ahead force (trx
   begin records) costs only its own program time. *)
let settle t =
  List.iter (Dev.await t.dev) t.pending;
  t.pending <- []

let force t =
  publish t;
  settle t

let payload_capacity t = t.sector_size - header_size

let append t record =
  let need = 2 + Bytes.length record in
  if need > payload_capacity t then raise (Record_too_large (Bytes.length record));
  if Buffer.length t.buf + need > payload_capacity t then begin
    if t.next_sector >= t.total_sectors then `Full
    else begin
      force t;
      if t.next_sector >= t.total_sectors then `Full
      else begin
        Buffer.add_uint16_le t.buf (Bytes.length record);
        Buffer.add_bytes t.buf record;
        `Ok
      end
    end
  end
  else begin
    (* Even an empty region must be able to take the eventual force. *)
    if t.next_sector >= t.total_sectors then `Full
    else begin
      Buffer.add_uint16_le t.buf (Bytes.length record);
      Buffer.add_bytes t.buf record;
      `Ok
    end
  end

let reset t =
  Buffer.clear t.buf;
  (* The erase makes durability of the old contents moot; drop the tags
     (awaiting a passed completion would be a no-op anyway). *)
  t.pending <- [];
  erase_region t;
  t.next_sector <- 0

(* Decode one sector defensively: a corrupt sector (bad checksum, lying
   length fields) contributes nothing instead of raising. Returns the
   records in order, or None when the sector fails validation. *)
let decode_sector t sector =
  let used = Bytes.get_uint16_le sector 0 in
  if used = 0xFFFF || used > t.sector_size - header_size then None
  else begin
    let stored = Int32.to_int (Bytes.get_int32_le sector 2) land 0xFFFFFFFF in
    let actual = Ipl_util.Checksum.crc32 sector ~pos:header_size ~len:used in
    if stored <> actual then None
    else begin
      let fin = header_size + used in
      let out = ref [] in
      let pos = ref header_size in
      let ok = ref true in
      while !ok && !pos + 2 <= fin do
        let len = Bytes.get_uint16_le sector !pos in
        if !pos + 2 + len > fin then ok := false (* truncated record: discard the rest *)
        else begin
          out := Bytes.sub sector (!pos + 2) len :: !out;
          pos := !pos + 2 + len
        end
      done;
      Some (List.rev !out)
    end
  end

let records t =
  let out = ref [] in
  for i = 0 to t.next_sector - 1 do
    if sector_used t i then begin
      let sector = Dev.read_sectors t.dev ~sector:(sector_addr t i) ~count:1 in
      match decode_sector t sector with
      | Some rs -> out := List.rev_append rs !out
      | None -> () (* torn or bit-flipped sector: its records are discarded *)
    end
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Buffered-append rollback (exception-safe callers)                   *)

type mark = { m_next : int; m_buf : int }

let mark t = { m_next = t.next_sector; m_buf = Buffer.length t.buf }

let rollback t m =
  if t.next_sector <> m.m_next || Buffer.length t.buf < m.m_buf then false
  else begin
    Buffer.truncate t.buf m.m_buf;
    true
  end

let sectors_written t = t.next_sector
let sector_capacity t = t.total_sectors
