module Chip = Flash_sim.Flash_chip
module Config = Flash_sim.Flash_config

(* Sector format: used:u16 (bytes of payload), then records, each
   [len:u16][bytes]. 0xffff in the "used" field (erased flash) marks an
   unwritten sector. *)

type t = {
  chip : Chip.t;
  first_block : int;
  num_blocks : int;
  sector_size : int;
  first_sector : int;
  total_sectors : int;
  buf : Buffer.t;  (* payload of the sector being assembled *)
  mutable next_sector : int;  (* index within the region *)
}

exception Record_too_large of int

let header_size = 2

let make chip ~first_block ~num_blocks =
  if num_blocks <= 0 then invalid_arg "Seq_log: need at least one block";
  let c = Chip.config chip in
  let spb = Config.sectors_per_block c in
  {
    chip;
    first_block;
    num_blocks;
    sector_size = c.Config.sector_size;
    first_sector = Chip.sector_of_block chip first_block;
    total_sectors = spb * num_blocks;
    buf = Buffer.create c.Config.sector_size;
    next_sector = 0;
  }

let erase_region t =
  for b = t.first_block to t.first_block + t.num_blocks - 1 do
    Chip.erase_block t.chip b
  done

let create chip ~first_block ~num_blocks =
  let t = make chip ~first_block ~num_blocks in
  erase_region t;
  t

let sector_used t i =
  Chip.sector_state t.chip (t.first_sector + i) <> Flash_sim.Flash_chip.Free

let recover chip ~first_block ~num_blocks =
  let t = make chip ~first_block ~num_blocks in
  let rec scan i = if i < t.total_sectors && sector_used t i then scan (i + 1) else i in
  t.next_sector <- scan 0;
  t

let force t =
  if Buffer.length t.buf > 0 then begin
    let payload = Buffer.to_bytes t.buf in
    let sector = Bytes.make t.sector_size '\xff' in
    Bytes.set_uint16_le sector 0 (Bytes.length payload);
    Bytes.blit payload 0 sector header_size (Bytes.length payload);
    Chip.write_sectors t.chip ~sector:(t.first_sector + t.next_sector) sector;
    t.next_sector <- t.next_sector + 1;
    Buffer.clear t.buf
  end

let payload_capacity t = t.sector_size - header_size

let append t record =
  let need = 2 + Bytes.length record in
  if need > payload_capacity t then raise (Record_too_large (Bytes.length record));
  if Buffer.length t.buf + need > payload_capacity t then begin
    if t.next_sector >= t.total_sectors then `Full
    else begin
      force t;
      if t.next_sector >= t.total_sectors then `Full
      else begin
        Buffer.add_uint16_le t.buf (Bytes.length record);
        Buffer.add_bytes t.buf record;
        `Ok
      end
    end
  end
  else begin
    (* Even an empty region must be able to take the eventual force. *)
    if t.next_sector >= t.total_sectors then `Full
    else begin
      Buffer.add_uint16_le t.buf (Bytes.length record);
      Buffer.add_bytes t.buf record;
      `Ok
    end
  end

let reset t =
  Buffer.clear t.buf;
  erase_region t;
  t.next_sector <- 0

let records t =
  let out = ref [] in
  for i = 0 to t.next_sector - 1 do
    if sector_used t i then begin
      let sector = Chip.read_sectors t.chip ~sector:(t.first_sector + i) ~count:1 in
      let used = Bytes.get_uint16_le sector 0 in
      if used <> 0xFFFF && used <= t.sector_size - header_size then begin
        let pos = ref header_size in
        while !pos < header_size + used do
          let len = Bytes.get_uint16_le sector !pos in
          out := Bytes.sub sector (!pos + 2) len :: !out;
          pos := !pos + 2 + len
        done
      end
    end
  done;
  List.rev !out

let sectors_written t = t.next_sector
let sector_capacity t = t.total_sectors
