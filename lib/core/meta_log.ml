type event =
  | Page_alloc of { page : int; eu : int; idx : int }
  | Merge of { old_eu : int; new_eu : int }
  | Overflow_alloc of { eu : int }
  | Overflow_assign of { data_eu : int; sector : int }
  | Overflow_release of { data_eu : int }
  | Overflow_free of { eu : int }
  | Remap of { virt : int; phys : int }
  | Retire of { block : int }
  | Degraded
  | Ckpt_eu of { eu : int; used_log : int; overflow : int; counts : (int * int) list }
  | Ckpt of { active : int list; trx_watermark : int }

type t = { log : Seq_log.t; mutable snapshot : (unit -> event list) option }

let u32 b pos n = Bytes.set_int32_le b pos (Int32.of_int n)
let g32 b pos = Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFFFFFF

let encode = function
  | Page_alloc { page; eu; idx } ->
      let b = Bytes.create 13 in
      Bytes.set_uint8 b 0 0;
      u32 b 1 page;
      u32 b 5 eu;
      u32 b 9 idx;
      b
  | Merge { old_eu; new_eu } ->
      let b = Bytes.create 9 in
      Bytes.set_uint8 b 0 1;
      u32 b 1 old_eu;
      u32 b 5 new_eu;
      b
  | Overflow_alloc { eu } ->
      let b = Bytes.create 5 in
      Bytes.set_uint8 b 0 2;
      u32 b 1 eu;
      b
  | Overflow_assign { data_eu; sector } ->
      let b = Bytes.create 9 in
      Bytes.set_uint8 b 0 3;
      u32 b 1 data_eu;
      u32 b 5 sector;
      b
  | Overflow_release { data_eu } ->
      let b = Bytes.create 5 in
      Bytes.set_uint8 b 0 4;
      u32 b 1 data_eu;
      b
  | Overflow_free { eu } ->
      let b = Bytes.create 5 in
      Bytes.set_uint8 b 0 5;
      u32 b 1 eu;
      b
  | Remap { virt; phys } ->
      let b = Bytes.create 9 in
      Bytes.set_uint8 b 0 6;
      u32 b 1 virt;
      u32 b 5 phys;
      b
  | Retire { block } ->
      let b = Bytes.create 5 in
      Bytes.set_uint8 b 0 7;
      u32 b 1 block;
      b
  | Degraded ->
      let b = Bytes.create 1 in
      Bytes.set_uint8 b 0 8;
      b
  | Ckpt_eu { eu; used_log; overflow; counts } ->
      let n = List.length counts in
      let b = Bytes.create (17 + (8 * n)) in
      Bytes.set_uint8 b 0 9;
      u32 b 1 eu;
      u32 b 5 used_log;
      u32 b 9 overflow;
      u32 b 13 n;
      List.iteri
        (fun i (txid, c) ->
          u32 b (17 + (8 * i)) txid;
          u32 b (21 + (8 * i)) c)
        counts;
      b
  | Ckpt { active; trx_watermark } ->
      let n = List.length active in
      let b = Bytes.create (9 + (4 * n)) in
      Bytes.set_uint8 b 0 10;
      u32 b 1 trx_watermark;
      u32 b 5 n;
      List.iteri (fun i txid -> u32 b (9 + (4 * i)) txid) active;
      b

let decode b =
  match Bytes.get_uint8 b 0 with
  | 0 -> Page_alloc { page = g32 b 1; eu = g32 b 5; idx = g32 b 9 }
  | 1 -> Merge { old_eu = g32 b 1; new_eu = g32 b 5 }
  | 2 -> Overflow_alloc { eu = g32 b 1 }
  | 3 -> Overflow_assign { data_eu = g32 b 1; sector = g32 b 5 }
  | 4 -> Overflow_release { data_eu = g32 b 1 }
  | 5 -> Overflow_free { eu = g32 b 1 }
  | 6 -> Remap { virt = g32 b 1; phys = g32 b 5 }
  | 7 -> Retire { block = g32 b 1 }
  | 8 -> Degraded
  | 9 ->
      let n = g32 b 13 in
      let counts =
        List.init n (fun i -> (g32 b (17 + (8 * i)), g32 b (21 + (8 * i))))
      in
      Ckpt_eu { eu = g32 b 1; used_log = g32 b 5; overflow = g32 b 9; counts }
  | 10 ->
      let n = g32 b 5 in
      Ckpt
        { active = List.init n (fun i -> g32 b (9 + (4 * i))); trx_watermark = g32 b 1 }
  | _ -> invalid_arg "Meta_log.decode: unknown tag"

let create chip ~first_block ~num_blocks =
  { log = Seq_log.create chip ~first_block ~num_blocks; snapshot = None }

let recover chip ~first_block ~num_blocks =
  let log = Seq_log.recover chip ~first_block ~num_blocks in
  let events = List.map decode (Seq_log.records log) in
  ({ log; snapshot = None }, events)

let set_snapshot t f = t.snapshot <- Some f

let compact t =
  match t.snapshot with
  | None -> failwith "Meta_log: region full and no snapshot function registered"
  | Some f ->
      let events = f () in
      Seq_log.reset t.log;
      List.iter
        (fun e ->
          match Seq_log.append t.log (encode e) with
          | `Ok -> ()
          | `Full -> failwith "Meta_log: region too small for snapshot")
        events;
      Seq_log.force t.log

let log t event =
  match Seq_log.append t.log (encode event) with
  | `Ok -> ()
  | `Full -> (
      compact t;
      match Seq_log.append t.log (encode event) with
      | `Ok -> ()
      | `Full -> failwith "Meta_log: region too small")

let publish t = Seq_log.publish t.log
let force t = Seq_log.force t.log

type mark = Seq_log.mark

let mark t = Seq_log.mark t.log
let rollback t m = Seq_log.rollback t.log m
let recompact t = compact t
