(** Append-only sequential log over a reserved range of erase units.

    Used for the two small system logs the IPL design keeps {e outside}
    the in-page log regions: the system-wide transaction log of Section 5.1
    and the logical-to-physical mapping metadata that the paper delegates
    to the FTL (Section 3.3).

    Records are opaque byte strings buffered into one flash sector at a
    time; {!force} makes everything appended so far durable (a partially
    filled sector is written out and the writer moves to the next sector,
    since flash sectors cannot be rewritten). *)

type t

exception Record_too_large of int

val create : Flash_sim.Flash_chip.t -> first_block:int -> num_blocks:int -> t
(** Start a fresh log; erases the region. *)

val recover : Flash_sim.Flash_chip.t -> first_block:int -> num_blocks:int -> t
(** Attach to an existing region after a crash: scans forward to find the
    append position. Buffered-but-unforced records from before the crash
    are gone, exactly as they would be on real hardware. *)

val append : t -> bytes -> [ `Ok | `Full ]
(** [`Full] means the region is out of space {e for this record}: the
    record was not appended; the caller should compact (read survivors,
    {!reset}, re-append). *)

val force : t -> unit
(** Flush the buffered partial sector, if any. *)

val reset : t -> unit
(** Erase the whole region and start over. *)

val records : t -> bytes list
(** All durable records in append order, read back from flash (does not
    include buffered, unforced ones). *)

val sectors_written : t -> int
val sector_capacity : t -> int
(** Total sectors in the region. *)
