(** Append-only sequential log over a reserved range of erase units.

    Used for the two small system logs the IPL design keeps {e outside}
    the in-page log regions: the system-wide transaction log of Section 5.1
    and the logical-to-physical mapping metadata that the paper delegates
    to the FTL (Section 3.3).

    Records are opaque byte strings buffered into one flash sector at a
    time; {!force} makes everything appended so far durable by waiting
    out this log's own in-flight sector programs — the precise
    durability wait, which does not stall on unrelated device traffic.
    {!publish} is the asynchronous half: it submits the partial sector
    (the writer moves to the next sector, since flash sectors cannot be
    rewritten) and lets the caller fold the wait into a later {!force}
    or device barrier. *)

type t

exception Record_too_large of int

val create : Device.Flash_device.t -> first_block:int -> num_blocks:int -> t
(** Start a fresh log; erases the region. *)

val recover : Device.Flash_device.t -> first_block:int -> num_blocks:int -> t
(** Attach to an existing region after a crash: scans forward to find the
    append position. Buffered-but-unforced records from before the crash
    are gone, exactly as they would be on real hardware. *)

val append : t -> bytes -> [ `Ok | `Full ]
(** [`Full] means the region is out of space {e for this record}: the
    record was not appended; the caller should compact (read survivors,
    {!reset}, re-append). *)

val publish : t -> unit
(** Submit the buffered partial sector, if any, without waiting for the
    program to complete. Durability comes from a later {!force} or a
    device-wide barrier. *)

val force : t -> unit
(** {!publish}, then wait out every published-but-unsettled sector
    program of this log. *)

val reset : t -> unit
(** Erase the whole region and start over. *)

val records : t -> bytes list
(** All durable records in append order, read back from flash (does not
    include buffered, unforced ones). Each sector carries a CRC-32 of its
    payload; a torn or bit-flipped sector fails the check and its records
    are silently discarded rather than decoded as garbage — the
    implicit-UNDO contract for a commit record whose sector rotted is that
    the transaction reverts to its pre-crash status. *)

(** {1 Rollback of buffered appends}

    Callers that interleave appends with fallible work (the merge path)
    can take a {!mark} first and roll the buffered-but-unforced appends
    back if the work fails, keeping the in-memory log consistent with
    what actually happened. *)

type mark

val mark : t -> mark

val rollback : t -> mark -> bool
(** Discard appends made since [mark]. Returns [false] — and changes
    nothing — when a sector was forced to flash in between (flash cannot
    be un-written); the caller must then rebuild by other means. *)

val sectors_written : t -> int
val sector_capacity : t -> int
(** Total sectors in the region. *)
