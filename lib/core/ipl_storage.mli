(** The in-page logging storage manager (Sections 3.2, 3.3 and 5.3).

    Every erase unit in the managed flash region is split into data pages
    and log sectors. Data pages are written exactly once per residence in
    an erase unit; all subsequent changes arrive as physiological log
    records flushed — one flash sector at a time — into the {e same} erase
    unit. Reading a page re-creates its current version on the fly by
    applying its log records to the stored image. When an erase unit runs
    out of log sectors, a merge (Algorithm 1; Algorithm 3 when recovery is
    enabled) rewrites it into a freshly erased unit.

    The logical-to-physical page mapping changes only on merges and is
    persisted through a {!Meta_log.t}; crash recovery replays that log and
    rescans the in-page log sectors.

    Transaction-status filtering: log records of aborted transactions are
    never applied (neither on read nor at merge); records of transactions
    still active at merge time are carried over to the new erase unit, or
    — when they would dominate the merge ([carry fraction > tau]) — the
    incoming log sector is diverted to an overflow erase unit and the
    merge is postponed.

    A DRAM log-record cache ({!Cache.Log_cache}, budget
    [Ipl_config.log_cache_bytes]) keeps each hot erase unit's decoded
    records with a per-page index: cache hits serve reads and merges
    without re-scanning the flash log region. The cache is write-through
    (appends mirror successful log programs) and invalidated when a merge
    rewrites a unit; it holds no state flash does not, so crash recovery
    is unaffected. An eager restart re-warms it as a side effect of the
    recovery rescan (each unit's decoded records are installed, counted
    as [log_cache_misses]); a lazy restart re-warms each covered unit at
    first touch instead, counted as [log_cache_warm_entries].
    [log_cache_bytes = 0] disables it, reproducing the uncached engine
    bit-for-bit.

    {2 Fuzzy checkpoints and lazy restart}

    When [Ipl_config.checkpoint_every > 0] the engine periodically emits
    a {e fuzzy checkpoint} into the metadata log ({!emit_checkpoint}):
    one [Ckpt_eu] record per data erase unit with a non-empty log region
    — claiming that the first [used_log] in-region sectors and the
    oldest [overflow] overflow sectors of that unit decode to exactly
    [counts] records per transaction — sealed by a [Ckpt] footer naming
    the transactions active at the checkpoint and the durable
    transaction-log watermark. Nothing is quiesced and no data moves:
    the claim is a prefix of an append-only log, so it stays true as the
    log grows and is invalidated only when a merge or an overflow
    release recycles the unit (recovery voids coverage on those events).

    With [Ipl_config.lazy_recovery] set, {!recover} seeds each covered
    unit's record counts from the checkpoint, reads only the
    post-checkpoint {e delta} of its log, and files the unit in a repair
    table. The covered prefix is then re-read and replayed on-demand —
    at the unit's first read, merge or log flush ({!Obs.Event.Page_repaired})
    — or drained in the background via {!repair_step}. Until a unit is
    repaired its full record list has not been materialised, but its
    counts and mapping are exact, so every storage invariant (merge
    decisions, tau, durability) holds from the first transaction. *)

type t

type stats = {
  pages_allocated : int;
  page_reads : int;  (** data-page fetches from flash *)
  log_sector_writes : int;  (** in-page log sectors programmed *)
  overflow_sector_writes : int;
  log_sector_reads : int;
  merges : int;
  overflow_diversions : int;  (** flushes diverted because carry > tau *)
  records_applied_at_merge : int;
  records_dropped_aborted : int;
  records_carried_over : int;
  erase_units_reclaimed : int;  (** overflow areas garbage-collected *)
  log_cache_hits : int;
      (** log-region reads served from the DRAM record cache (no flash) *)
  log_cache_misses : int;  (** log-region reads that scanned flash *)
  log_cache_evictions : int;  (** cache entries dropped for the byte budget *)
  log_cache_warm_entries : int;
      (** cache entries installed by lazy post-crash repair (first-touch
          or background), as opposed to ordinary demand misses *)
  eus_repaired_lazily : int;
      (** erase units whose covered log prefix was replayed on demand
          after a lazy restart *)
}

val create :
  ?config:Ipl_config.t ->
  ?bbm:Resilience.Bbm.t ->
  Device.Flash_device.t ->
  first_block:int ->
  num_blocks:int ->
  txn_status:(int -> Trx_log.status) ->
  meta:Meta_log.t ->
  unit ->
  t
(** Manage blocks [first_block, first_block + num_blocks). All blocks are
    erased. The [meta] log must be empty (fresh database). With [bbm],
    every data-area flash operation is routed through the bad-block
    manager: block addresses become virtual, failed programs/erases are
    relocated transparently, and mutations raise
    {!Resilience.Bbm.Degraded} once the spare pool is exhausted (the
    engine turns that into its typed [Device_degraded] error). The
    manager's remap/retire state is included in metadata-log snapshot
    compactions. *)

val recover :
  ?config:Ipl_config.t ->
  ?bbm:Resilience.Bbm.t ->
  ?trx_durable:int ->
  Device.Flash_device.t ->
  first_block:int ->
  num_blocks:int ->
  txn_status:(int -> Trx_log.status) ->
  meta:Meta_log.t ->
  meta_events:Meta_log.event list ->
  unit ->
  t
(** Rebuild state after a crash from the replayed metadata events plus a
    scan of the flash region. Unreferenced half-written erase units (from
    a crash mid-merge) are erased. [bbm] must already have had the
    [Remap]/[Retire]/[Degraded] events replayed into it (they are ignored
    here).

    [trx_durable] is the recovered transaction log's durable sector count
    ({!Trx_log.durable_sectors} after {!Trx_log.recover}); a checkpoint
    footer whose watermark exceeds it is discarded, since the statuses
    its counts were filtered against never reached flash. When
    [config.lazy_recovery] is set and a usable checkpoint is found, the
    scan reads only each covered unit's post-checkpoint log delta and
    defers the covered prefix to on-demand repair (see the header);
    otherwise the scan is eager and the repair table stays empty. *)

val config : t -> Ipl_config.t

val allocate_page : t -> Storage.Page.t -> int
(** Place a new logical page, writing its initial image; returns its id.
    Durable once the metadata log is next forced. *)

val page_exists : t -> int -> bool
val num_pages : t -> int

val read_page : t -> int -> Storage.Page.t
(** Current version: stored image + all live log records (aborted
    transactions' records are skipped). *)

val read_pages : t -> int list -> (int * Storage.Page.t) list
(** Batched {!read_page}: the raw page reads of the whole batch are
    submitted to the device before any is awaited, so pages on different
    channels are fetched in parallel on the simulated clock. Returns
    [(pid, page)] in argument order; counters and replay are identical
    to a sequential loop (and under a bad-block manager the batch {e is}
    a sequential loop — retries are synchronous). *)

type read_batch

val read_pages_start : t -> int list -> read_batch
(** Submit the batch's raw page reads without awaiting any of them —
    execution is eager, so the data is captured here and only the
    completion times are outstanding. Intervening merges may relocate
    the pages; the captured images plus their live log records still
    reproduce the current logical content. *)

val read_pages_finish : t -> read_batch -> (int * Storage.Page.t) list
(** Await the batch and replay each page's log records.
    [read_pages t pids = read_pages_finish t (read_pages_start t pids)];
    splitting the two lets the await overlap a durability barrier the
    caller issues in between (the barrier settles the reads too). *)

val flush_log : t -> page:int -> Log_record.t list -> unit
(** Persist one in-memory log sector's records for [page]. Writes a log
    sector in the page's erase unit, or — if none is free — merges the
    unit (consuming the records) or diverts the sector to an overflow
    area. [records] must be non-empty and fit one sector. *)

val force_meta : t -> unit
(** Make allocations/merges performed so far durable. *)

val publish_meta : t -> unit
(** Submit the buffered metadata sector without waiting for the program;
    the commit path pays one device barrier for it together with the
    transaction-log and in-page log flushes it publishes. *)

val emit_checkpoint : t -> active:int list -> trx_watermark:int -> unit
(** Append a fuzzy checkpoint (per-unit [Ckpt_eu] coverage records plus
    the [Ckpt] footer) to the metadata log buffer — no force, no barrier:
    the caller's next durability barrier carries it, and a checkpoint
    torn by a crash is simply ignored at recovery. [active] is the
    transaction ids active right now ({!Trx_log.active});
    [trx_watermark] the durable transaction-log sector count
    ({!Trx_log.durable_sectors}). Skipped entirely (no-op) if [active]
    is implausibly large for one footer record (> 120 ids). The emitted
    coverage is also folded into later metadata-log snapshot
    compactions, so a checkpoint survives compaction. *)

val repair_pending : t -> int
(** Erase units still awaiting on-demand repair after a lazy restart
    (0 on an eager restart, and once repair has drained). *)

val repair_step : t -> max_eus:int -> int
(** Repair up to [max_eus] pending units (lowest-numbered first): re-read
    each unit's covered log prefix, re-install its full decoded record
    list into the cache, and emit {!Obs.Event.Page_repaired} per touched
    page. Leftover budget then retires reclamation erases the lazy
    restart deferred (dirty unmapped blocks it left unerased to get off
    the critical path), so a [max_int] drain leaves no background debt.
    Returns the number of units repaired (deferred erases are not
    counted). Used by the engine's background drainer; first-touch
    repair happens implicitly on reads, merges and log flushes. *)

val merge_fullest : t -> max_merges:int -> int
(** Merge up to [max_merges] data erase units, fullest log region first,
    skipping units with empty log regions. Returns the number merged. Used
    for proactive (background) merging. *)

val merge_eu_of_page : t -> int -> unit
(** Force a merge of the erase unit containing a page (used by tests and
    by checkpointing to purge old log records). *)

val eu_of_page : t -> int -> int
(** Physical erase unit currently hosting a page. *)

val used_log_sectors : t -> eu:int -> int
val overflow_sectors : t -> eu:int -> int
(** Overflow log sectors currently assigned to data erase unit [eu]. *)

val free_eus : t -> int
val stats : t -> stats

module Stats : Ipl_util.Stats_intf.S with type t = stats

val set_tracer : t -> Obs.Tracer.t option -> unit
(** Install or clear a trace sink for storage-level events:
    {!Obs.Event.Page_alloc}, [Page_read], [Log_flush],
    [Overflow_diversion] and [Merge], timestamped with the chip's
    simulated clock. Each hook site is a single option check when no
    tracer is installed. *)


val live_log_records : t -> page:int -> Log_record.t list
(** All live (non-aborted) flash log records of a page, in application
    order — for tests and the recovery demo. *)
