type status = Active | Committed | Aborted

type t = { log : Seq_log.t; statuses : (int, status) Hashtbl.t }

(* Record format: tag:u8 (0 begin, 1 commit, 2 abort), txid:u32. *)
let encode tag txid =
  let b = Bytes.create 5 in
  Bytes.set_uint8 b 0 tag;
  Bytes.set_int32_le b 1 (Int32.of_int txid);
  b

let decode b =
  if Bytes.length b <> 5 then invalid_arg "Trx_log: bad record";
  (Bytes.get_uint8 b 0, Int32.to_int (Bytes.get_int32_le b 1) land 0xFFFFFFFF)

let create chip ~first_block ~num_blocks =
  { log = Seq_log.create chip ~first_block ~num_blocks; statuses = Hashtbl.create 256 }

(* Compaction: committed history can be forgotten (unknown = committed),
   but aborted ids must survive for as long as their in-page log records
   might — we keep them all; active ones keep their begin records. *)
let compact t =
  Seq_log.reset t.log;
  Hashtbl.iter
    (fun txid status ->
      let tag = match status with Active -> 0 | Aborted -> 2 | Committed -> 1 in
      if status <> Committed then
        match Seq_log.append t.log (encode tag txid) with
        | `Ok -> ()
        | `Full -> failwith "Trx_log: log region too small even after compaction")
    t.statuses;
  Hashtbl.filter_map_inplace
    (fun _ status -> if status = Committed then None else Some status)
    t.statuses

let append t record =
  match Seq_log.append t.log record with
  | `Ok -> ()
  | `Full -> (
      compact t;
      match Seq_log.append t.log record with
      | `Ok -> ()
      | `Full -> failwith "Trx_log: log region too small")

let log_begin t txid =
  Hashtbl.replace t.statuses txid Active;
  append t (encode 0 txid)

let log_commit ?(force = true) t txid =
  Hashtbl.replace t.statuses txid Committed;
  append t (encode 1 txid);
  if force then Seq_log.force t.log

let log_abort t txid =
  Hashtbl.replace t.statuses txid Aborted;
  append t (encode 2 txid);
  Seq_log.force t.log

let status t txid =
  if txid = 0 then Committed
  else match Hashtbl.find_opt t.statuses txid with Some s -> s | None -> Committed

let active t =
  Hashtbl.fold (fun txid s acc -> if s = Active then txid :: acc else acc) t.statuses []

let max_txid t = Hashtbl.fold (fun txid _ acc -> max txid acc) t.statuses 0

let publish t = Seq_log.publish t.log
let force t = Seq_log.force t.log

let recover chip ~first_block ~num_blocks =
  let log = Seq_log.recover chip ~first_block ~num_blocks in
  let t = { log; statuses = Hashtbl.create 256 } in
  List.iter
    (fun r ->
      let tag, txid = decode r in
      let status = match tag with 0 -> Active | 1 -> Committed | _ -> Aborted in
      Hashtbl.replace t.statuses txid status)
    (Seq_log.records log);
  let incomplete = active t in
  List.iter (fun txid -> log_abort t txid) incomplete;
  (t, incomplete)
