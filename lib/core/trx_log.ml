type status = Active | Committed | Aborted

type t = {
  log : Seq_log.t;
  statuses : (int, status) Hashtbl.t;
  mutable deferred : int list;  (* group-commit records not yet in the log; newest first *)
}

(* Record format: tag:u8 (0 begin, 1 commit, 2 abort), txid:u32. *)
let encode tag txid =
  let b = Bytes.create 5 in
  Bytes.set_uint8 b 0 tag;
  Bytes.set_int32_le b 1 (Int32.of_int txid);
  b

let decode b =
  if Bytes.length b <> 5 then invalid_arg "Trx_log: bad record";
  (Bytes.get_uint8 b 0, Int32.to_int (Bytes.get_int32_le b 1) land 0xFFFFFFFF)

let create chip ~first_block ~num_blocks =
  {
    log = Seq_log.create chip ~first_block ~num_blocks;
    statuses = Hashtbl.create 256;
    deferred = [];
  }

(* Compaction: committed history can be forgotten (unknown = committed),
   but aborted ids must survive for as long as their in-page log records
   might — we keep them all; active ones keep their begin records. A
   deferred commit is still Active {e on flash}: until the group barrier
   appends its record, a crash must roll it back, so its begin record is
   rewritten and its id stays out of the forgotten-equals-committed
   default. *)
let compact t =
  Seq_log.reset t.log;
  Hashtbl.iter
    (fun txid status ->
      let on_flash = if List.mem txid t.deferred then Active else status in
      let tag = match on_flash with Active -> 0 | Aborted -> 2 | Committed -> 1 in
      if on_flash <> Committed then
        match Seq_log.append t.log (encode tag txid) with
        | `Ok -> ()
        | `Full -> failwith "Trx_log: log region too small even after compaction")
    t.statuses;
  Hashtbl.filter_map_inplace
    (fun txid status ->
      if status = Committed && not (List.mem txid t.deferred) then None
      else Some status)
    t.statuses

let append t record =
  match Seq_log.append t.log record with
  | `Ok -> ()
  | `Full -> (
      compact t;
      match Seq_log.append t.log record with
      | `Ok -> ()
      | `Full -> failwith "Trx_log: log region too small")

let log_begin t txid =
  Hashtbl.replace t.statuses txid Active;
  append t (encode 0 txid)

let log_commit ?(force = true) t txid =
  Hashtbl.replace t.statuses txid Committed;
  append t (encode 1 txid);
  if force then Seq_log.force t.log

(* Group commit's write-ahead discipline, the mirror image of the begin
   record's: a commit record may only reach flash AFTER the batch's data
   records, but [force] (begin-record write-ahead at a dirty-frame flush)
   and [compact] can push the shared sector buffer out at any moment. So
   a deferred commit lives outside the buffer entirely — visible to live
   status queries, invisible to flash — until {!flush_deferred} appends
   the batch at the barrier. *)
let defer_commit t txid =
  Hashtbl.replace t.statuses txid Committed;
  t.deferred <- txid :: t.deferred

let is_deferred t txid = List.mem txid t.deferred

let flush_deferred t =
  let batch = List.rev t.deferred in
  t.deferred <- [];
  List.iter (fun txid -> append t (encode 1 txid)) batch

let log_abort t txid =
  Hashtbl.replace t.statuses txid Aborted;
  append t (encode 2 txid);
  Seq_log.force t.log

(* A deferred commit reports [Active]: its commit record is not on flash
   yet, so nothing irreversible may happen to its in-page records — in
   particular a merge must carry them forward into the new erase unit
   rather than bake them into the home page, where a crash before the
   group barrier could no longer roll them back. Reads are unaffected
   (they skip only [Aborted] records). *)
let status t txid =
  if txid = 0 then Committed
  else if is_deferred t txid then Active
  else match Hashtbl.find_opt t.statuses txid with Some s -> s | None -> Committed

let active t =
  Hashtbl.fold (fun txid s acc -> if s = Active then txid :: acc else acc) t.statuses []

let max_txid t = Hashtbl.fold (fun txid _ acc -> max txid acc) t.statuses 0
let durable_sectors t = Seq_log.sectors_written t.log

let publish t = Seq_log.publish t.log
let force t = Seq_log.force t.log

let recover chip ~first_block ~num_blocks =
  let log = Seq_log.recover chip ~first_block ~num_blocks in
  let t = { log; statuses = Hashtbl.create 256; deferred = [] } in
  List.iter
    (fun r ->
      let tag, txid = decode r in
      let status = match tag with 0 -> Active | 1 -> Committed | _ -> Aborted in
      Hashtbl.replace t.statuses txid status)
    (Seq_log.records log);
  let incomplete = active t in
  List.iter (fun txid -> log_abort t txid) incomplete;
  (t, incomplete)
