(** Slotted data pages.

    A page holds variable-length records addressed by a stable slot number.
    Record payloads grow upward from the header; the slot directory grows
    downward from the end of the page. Deleting or shrinking records leaves
    holes that {!compact} reclaims (and {!insert}/{!update} compact
    automatically when needed).

    Slot numbers are stable across compaction — they are the physical half
    of the "physiological" log records of the paper (page id + slot id +
    payload), so replaying a page's log against an older version of the
    page must land on the same slots. *)

type t

val header_size : int
val slot_entry_size : int

val create : int -> t
(** [create size] is an empty page of [size] bytes. [size] must be at
    least 64 and at most 65528. *)

val of_bytes : bytes -> t
(** Adopt (not copy) an existing page image. *)

val to_bytes : t -> bytes
(** The underlying image (not a copy). *)

val copy : t -> t
val size : t -> int
val slot_count : t -> int
(** Number of slot directory entries, including deleted ones. *)

val live_records : t -> int
val free_space : t -> int
(** Bytes available for a new record's payload, assuming one new slot
    entry and full compaction. *)

val is_live : t -> int -> bool
(** [is_live p slot] is false for deleted or out-of-range slots. *)

val read : t -> int -> bytes option
(** Payload of a live slot; [None] for deleted or out-of-range slots. *)

val insert : t -> bytes -> int option
(** Add a record, reusing the lowest deleted slot if any. Returns the slot
    number, or [None] when the page cannot fit the payload. *)

val insert_at : t -> int -> bytes -> (unit, string) result
(** Place a record at a specific slot (used when replaying log records).
    The slot must not currently be live; the directory is extended with
    empty slots as needed. *)

val update : t -> int -> bytes -> (unit, string) result
(** Replace the payload of a live slot, relocating within the page if the
    new payload is larger. Fails if the slot is not live or the page is
    full. *)

val update_bytes : t -> slot:int -> offset:int -> bytes -> (unit, string) result
(** Overwrite part of a live record in place: [offset] is relative to the
    record payload and the written range must fall inside it. This is the
    byte-range delta form of update that keeps physiological log records
    small. *)

val delete : t -> int -> (unit, string) result
(** Remove a live record; its slot number may be reused by later inserts. *)

val compact : t -> unit
(** Squeeze out holes; slot numbers and payloads are unchanged. *)

val iter : (int -> bytes -> unit) -> t -> unit
(** Apply to every live (slot, payload). *)

val equal_content : t -> t -> bool
(** Same live slots with the same payloads (layout may differ). *)
