(** A small self-describing record codec for table rows.

    Rows are field lists; the encoding is compact and deterministic so the
    same row always produces the same bytes (important for tests that
    compare page contents after log replay). *)

type field =
  | I of int  (** 63-bit integer *)
  | F of float
  | S of string

type t = field list

val encode : t -> bytes
val decode : bytes -> t
(** Raises [Invalid_argument] on malformed input. *)

val encoded_size : t -> int

val get_int : t -> int -> int
(** [get_int row i] is field [i], which must be an [I]. *)

val get_float : t -> int -> float
val get_string : t -> int -> string

val set : t -> int -> field -> t
(** Functional update of field [i]. *)

val pp : Format.formatter -> t -> unit
