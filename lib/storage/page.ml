(* Page layout:
     [0..1]   slot_count   (u16)
     [2..3]   free_start   (u16) first unused byte of the payload area
     [4..5]   live_count   (u16)
     [6..7]   magic 0x1b50 ("IPL page")
   Payload area: [header_size .. free_start).
   Slot directory: entries of 4 bytes (u16 offset, u16 length) growing down
   from the end; slot i lives at [size - 4*(i+1)]. length 0 = empty slot. *)

type t = bytes

let header_size = 8
let slot_entry_size = 4
let magic = 0x1b50

let size = Bytes.length
let slot_count p = Bytes.get_uint16_le p 0
let free_start p = Bytes.get_uint16_le p 2
let live_records p = Bytes.get_uint16_le p 4

let set_slot_count p n = Bytes.set_uint16_le p 0 n
let set_free_start p n = Bytes.set_uint16_le p 2 n
let set_live p n = Bytes.set_uint16_le p 4 n

let create sz =
  if sz < 64 || sz > 65528 then invalid_arg "Page.create: unsupported page size";
  let p = Bytes.make sz '\000' in
  set_free_start p header_size;
  Bytes.set_uint16_le p 6 magic;
  p

let of_bytes b =
  if Bytes.length b < 64 then invalid_arg "Page.of_bytes: too small";
  if Bytes.get_uint16_le b 6 <> magic then invalid_arg "Page.of_bytes: bad magic";
  b

let to_bytes p = p
let copy = Bytes.copy

let slot_pos p i = size p - (slot_entry_size * (i + 1))

let slot p i =
  let pos = slot_pos p i in
  (Bytes.get_uint16_le p pos, Bytes.get_uint16_le p (pos + 2))

let set_slot p i ~off ~len =
  let pos = slot_pos p i in
  Bytes.set_uint16_le p pos off;
  Bytes.set_uint16_le p (pos + 2) len

let dir_start p = size p - (slot_entry_size * slot_count p)

let is_live p i = i >= 0 && i < slot_count p && snd (slot p i) > 0

let read p i = if is_live p i then
    let off, len = slot p i in
    Some (Bytes.sub p off len)
  else None

(* Payload bytes recoverable by compaction: everything in the payload area
   not covered by a live record. *)
let compact p =
  let n = slot_count p in
  let live = ref [] in
  for i = 0 to n - 1 do
    let off, len = slot p i in
    if len > 0 then live := (off, i, len) :: !live
  done;
  let live = List.sort compare !live in
  let cursor = ref header_size in
  let scratch = Bytes.create (size p) in
  List.iter
    (fun (off, i, len) ->
      Bytes.blit p off scratch !cursor len;
      set_slot p i ~off:!cursor ~len;
      cursor := !cursor + len)
    live;
  Bytes.blit scratch header_size p header_size (!cursor - header_size);
  set_free_start p !cursor

let used_payload p =
  let n = slot_count p in
  let total = ref 0 in
  for i = 0 to n - 1 do
    let _, len = slot p i in
    total := !total + len
  done;
  !total

let free_space p =
  let used = used_payload p in
  let dir = slot_entry_size * slot_count p in
  max 0 (size p - header_size - used - dir - slot_entry_size)

(* Contiguous room right now, without compaction, for [extra_slots] new
   directory entries and [len] payload bytes. *)
let contiguous_room p ~extra_slots ~len =
  dir_start p - (slot_entry_size * extra_slots) - free_start p >= len

let ensure_room p ~extra_slots ~len =
  if contiguous_room p ~extra_slots ~len then true
  else begin
    compact p;
    contiguous_room p ~extra_slots ~len
  end

let first_empty_slot p =
  let n = slot_count p in
  let rec find i = if i >= n then None else if not (is_live p i) then Some i else find (i + 1) in
  find 0

let append_payload p data =
  let off = free_start p in
  Bytes.blit data 0 p off (Bytes.length data);
  set_free_start p (off + Bytes.length data);
  off

let insert p data =
  let len = Bytes.length data in
  if len = 0 || len > 0xFFFF then invalid_arg "Page.insert: bad record length";
  let reuse = first_empty_slot p in
  let extra_slots = match reuse with Some _ -> 0 | None -> 1 in
  if not (ensure_room p ~extra_slots ~len) then None
  else begin
    let i = match reuse with Some i -> i | None -> let i = slot_count p in set_slot_count p (i + 1); i in
    let off = append_payload p data in
    set_slot p i ~off ~len;
    set_live p (live_records p + 1);
    Some i
  end

let insert_at p i data =
  let len = Bytes.length data in
  if len = 0 || len > 0xFFFF then Error "bad record length"
  else if i < 0 then Error "negative slot"
  else if is_live p i then Error "slot already live"
  else begin
    let extra_slots = max 0 (i + 1 - slot_count p) in
    if not (ensure_room p ~extra_slots ~len) then Error "page full"
    else begin
      if i >= slot_count p then begin
        for j = slot_count p to i do
          set_slot_count p (j + 1);
          set_slot p j ~off:0 ~len:0
        done
      end;
      let off = append_payload p data in
      set_slot p i ~off ~len;
      set_live p (live_records p + 1);
      Ok ()
    end
  end

let update p i data =
  let len = Bytes.length data in
  if len = 0 || len > 0xFFFF then Error "bad record length"
  else if not (is_live p i) then Error "slot not live"
  else begin
    let off, old_len = slot p i in
    if len <= old_len then begin
      Bytes.blit data 0 p off len;
      set_slot p i ~off ~len;
      Ok ()
    end
    else begin
      (* Relocate: drop the old copy, append the new one. *)
      set_slot p i ~off:0 ~len:0;
      if not (ensure_room p ~extra_slots:0 ~len) then begin
        set_slot p i ~off ~len:old_len;
        Error "page full"
      end
      else begin
        let off' = append_payload p data in
        set_slot p i ~off:off' ~len;
        Ok ()
      end
    end
  end

let update_bytes p ~slot:i ~offset data =
  if not (is_live p i) then Error "slot not live"
  else begin
    let off, len = slot p i in
    let dlen = Bytes.length data in
    if offset < 0 || offset + dlen > len then Error "range outside record"
    else begin
      Bytes.blit data 0 p (off + offset) dlen;
      Ok ()
    end
  end

let delete p i =
  if not (is_live p i) then Error "slot not live"
  else begin
    set_slot p i ~off:0 ~len:0;
    set_live p (live_records p - 1);
    Ok ()
  end

let iter f p =
  for i = 0 to slot_count p - 1 do
    match read p i with Some data -> f i data | None -> ()
  done

let equal_content a b =
  let slots p =
    let acc = ref [] in
    iter (fun i data -> acc := (i, data) :: !acc) p;
    List.sort compare !acc
  in
  slots a = slots b
