type field = I of int | F of float | S of string
type t = field list

(* Tags: 0 = int (8-byte LE), 1 = float (8-byte LE bits), 2 = string
   (u16 length + bytes). *)

let encoded_size row =
  List.fold_left
    (fun acc f ->
      acc
      + match f with I _ -> 9 | F _ -> 9 | S s -> 3 + String.length s)
    0 row

let encode row =
  let buf = Buffer.create (encoded_size row) in
  List.iter
    (fun f ->
      match f with
      | I n ->
          Buffer.add_char buf '\000';
          Buffer.add_int64_le buf (Int64.of_int n)
      | F x ->
          Buffer.add_char buf '\001';
          Buffer.add_int64_le buf (Int64.bits_of_float x)
      | S s ->
          if String.length s > 0xFFFF then invalid_arg "Record.encode: string too long";
          Buffer.add_char buf '\002';
          Buffer.add_uint16_le buf (String.length s);
          Buffer.add_string buf s)
    row;
  Buffer.to_bytes buf

let decode b =
  let len = Bytes.length b in
  let rec go pos acc =
    if pos >= len then List.rev acc
    else if pos + 1 > len then invalid_arg "Record.decode: truncated"
    else
      match Bytes.get b pos with
      | '\000' ->
          if pos + 9 > len then invalid_arg "Record.decode: truncated int";
          go (pos + 9) (I (Int64.to_int (Bytes.get_int64_le b (pos + 1))) :: acc)
      | '\001' ->
          if pos + 9 > len then invalid_arg "Record.decode: truncated float";
          go (pos + 9) (F (Int64.float_of_bits (Bytes.get_int64_le b (pos + 1))) :: acc)
      | '\002' ->
          if pos + 3 > len then invalid_arg "Record.decode: truncated string header";
          let slen = Bytes.get_uint16_le b (pos + 1) in
          if pos + 3 + slen > len then invalid_arg "Record.decode: truncated string";
          go (pos + 3 + slen) (S (Bytes.sub_string b (pos + 3) slen) :: acc)
      | _ -> invalid_arg "Record.decode: unknown tag"
  in
  go 0 []

let get row i =
  match List.nth_opt row i with
  | Some f -> f
  | None -> invalid_arg "Record: field index out of range"

let get_int row i =
  match get row i with I n -> n | _ -> invalid_arg "Record.get_int: not an int"

let get_float row i =
  match get row i with F x -> x | _ -> invalid_arg "Record.get_float: not a float"

let get_string row i =
  match get row i with S s -> s | _ -> invalid_arg "Record.get_string: not a string"

let set row i f =
  if i < 0 || i >= List.length row then invalid_arg "Record.set: field index out of range";
  List.mapi (fun j g -> if j = i then f else g) row

let pp_field ppf = function
  | I n -> Format.fprintf ppf "%d" n
  | F x -> Format.fprintf ppf "%g" x
  | S s -> Format.fprintf ppf "%S" s

let pp ppf row =
  Format.fprintf ppf "(%a)" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_field) row
