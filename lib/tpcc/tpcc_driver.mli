(** Trace generation driver — the reproduction's stand-in for running
    Hammerora against a commercial server (Section 4.2.1).

    [generate_trace] loads a TPC-C database into the logical layout store
    and runs the transaction mix, producing a named update-reference
    trace. The paper's three traces map to:

    - 100M.20M.10u  -> [~warehouses:1  ~buffer_mb:20]
    - 1G.20M.100u   -> [~warehouses:10 ~buffer_mb:20]
    - 1G.40M.100u   -> [~warehouses:10 ~buffer_mb:40]

    plus the 60/80/100 MB pools of Figure 7. The simulated-user count only
    names the trace: transactions execute one at a time, which leaves the
    page-reference stream equivalent for this single-version store. *)

type result = {
  trace : Reftrace.Trace.t;
  counts : Tpcc_txn.counts;
  db_pages : int;
  transactions : int;
}

val trace_name : warehouses:int -> buffer_mb:int -> users:int -> string
(** e.g. "1G.20M.100u". *)

val generate_trace :
  ?sizing:Tpcc_txn.sizing ->
  ?seed:int ->
  warehouses:int ->
  buffer_mb:int ->
  users:int ->
  transactions:int ->
  unit ->
  result

val generate_trace_series :
  ?sizing:Tpcc_txn.sizing ->
  ?seed:int ->
  warehouses:int ->
  users:int ->
  transactions:int ->
  buffer_mbs:int list ->
  unit ->
  (int * Reftrace.Trace.t) list
(** Load the database once, then produce one trace per buffer-pool size
    (running [transactions] per phase on a fresh pool). Far cheaper than
    loading per configuration; the database ages slightly between phases,
    as it would across consecutive Hammerora runs. *)

(** {1 Running on the real engine} *)

module Engine_run : sig
  type t = {
    engine : Ipl_core.Ipl_engine.t;
    store : Tpcc_engine_store.t;
    counts : Tpcc_txn.counts;
  }

  val run :
    ?sizing:Tpcc_txn.sizing ->
    ?seed:int ->
    ?config:Ipl_core.Ipl_config.t ->
    chip_blocks:int ->
    transactions:int ->
    unit ->
    t
  (** Load a (small) TPC-C database on a fresh IPL engine and run the mix
      end-to-end with transactional recovery enabled. *)
end
