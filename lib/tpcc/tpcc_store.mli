(** The storage interface the TPC-C transactions run against.

    Two implementations exist: {!Tpcc_engine_store} executes everything on
    the real IPL engine (rows in slotted pages, one B+-tree per table),
    and {!Tpcc_layout_store} is the logical model used to generate the
    paper's 1 GB reference traces without materialising a 1 GB database. *)

module type S = sig
  type t

  type tx
  (** A store-specific transaction handle ({!Ipl_core.Ipl_engine.txn} on
      the engine store, a plain counter on the layout model). *)

  val no_txn : tx
  (** Mutations carrying it are implicitly committed (bulk load). *)

  val begin_txn : t -> tx
  val commit : t -> tx -> unit
  val abort : t -> tx -> unit

  val insert : t -> tx:tx -> Tpcc_schema.table -> key:int -> Storage.Record.t -> unit
  (** [key] must be fresh in the table. *)

  val lookup : t -> Tpcc_schema.table -> key:int -> Storage.Record.t option

  val update :
    t -> tx:tx -> Tpcc_schema.table -> key:int -> (Storage.Record.t -> Storage.Record.t) -> bool
  (** Returns false when the key is absent. *)

  val delete : t -> tx:tx -> Tpcc_schema.table -> key:int -> bool

  val next_key_ge : t -> Tpcc_schema.table -> key:int -> int option
  (** Smallest key [>=] the argument (used by Delivery to pick the oldest
      undelivered order). *)

  val customer_by_last_name : t -> w:int -> d:int -> last:string -> (int * Storage.Record.t) option
  (** Clause 2.5.2.2: the position [ceil(n/2)] customer (by customer
      number) among those of the district sharing the last name, with its
      row; [None] if the name has no match. Served from a secondary
      index. *)
end
