(** TPC-C storage backed by the real IPL engine: rows live in slotted heap
    pages, every table has a B+-tree mapping its packed primary key to a
    row id (page, slot). All mutations flow through the engine's
    physiological logging, so running transactions here exercises the full
    IPL stack. *)

include Tpcc_store.S

val create : Ipl_core.Ipl_engine.t -> t
val engine : t -> Ipl_core.Ipl_engine.t

val index_height : t -> Tpcc_schema.table -> int
val row_count : t -> Tpcc_schema.table -> int
(** Entries in the table's index (full scan — for tests). *)
