module Rng = Ipl_util.Rng
module Schema = Tpcc_schema
open Storage.Record

type sizing = {
  warehouses : int;
  districts : int;
  customers : int;
  items : int;
  orders : int;
}

let spec_sizing ~warehouses =
  {
    warehouses;
    districts = Schema.districts_per_warehouse;
    customers = Schema.customers_per_district;
    items = Schema.items;
    orders = Schema.initial_orders_per_district;
  }

let mini_sizing = { warehouses = 1; districts = 2; customers = 60; items = 200; orders = 30 }

type counts = {
  mutable new_order : int;
  mutable payment : int;
  mutable order_status : int;
  mutable delivery : int;
  mutable stock_level : int;
  mutable rollbacks : int;
}

module Make (S : Tpcc_store.S) = struct
  type ctx = {
    store : S.t;
    rng : Rng.t;
    sizing : sizing;
    rollback_rate : float;
    mutable history_seq : int;
    counts : counts;
  }

  let make_ctx ?(rollback_rate = 0.01) store ~seed sizing =
    {
      store;
      rng = Rng.of_int seed;
      sizing;
      rollback_rate;
      history_seq = 0;
      counts =
        {
          new_order = 0;
          payment = 0;
          order_status = 0;
          delivery = 0;
          stock_level = 0;
          rollbacks = 0;
        };
    }

  let counts ctx = ctx.counts
  let store ctx = ctx.store

  let rand_w ctx = 1 + Rng.int ctx.rng ctx.sizing.warehouses
  let rand_d ctx = 1 + Rng.int ctx.rng ctx.sizing.districts

  let nurand_customer ctx = Rng.nurand ctx.rng ~a:1023 ~x:1 ~y:ctx.sizing.customers ~c:259
  let nurand_item ctx = Rng.nurand ctx.rng ~a:8191 ~x:1 ~y:ctx.sizing.items ~c:7911

  (* Clause 2.5.2.2 / 2.6.2.2: 60 % of Payment and Order-Status select the
     customer by last name (middle match), 40 % by number. *)
  let select_customer ctx ~w ~d =
    if Rng.chance ctx.rng 0.6 then begin
      let name = Rng.last_name (Rng.nurand ctx.rng ~a:255 ~x:0 ~y:999 ~c:123) in
      match S.customer_by_last_name ctx.store ~w ~d ~last:name with
      | Some (c, _row) -> c
      | None -> nurand_customer ctx
    end
    else nurand_customer ctx

  let next_history_key ctx =
    ctx.history_seq <- ctx.history_seq + 1;
    ctx.history_seq

  (* ------------------------------------------------------------------ *)
  (* Population (clause 4.3)                                             *)

  let load ctx =
    let s = ctx.sizing and rng = ctx.rng and st = ctx.store in
    for i = 1 to s.items do
      S.insert st ~tx:S.no_txn Schema.Item ~key:(Schema.item_key ~i) (Schema.item_row rng ~i)
    done;
    for w = 1 to s.warehouses do
      S.insert st ~tx:S.no_txn Schema.Warehouse ~key:(Schema.warehouse_key ~w)
        (Schema.warehouse_row rng ~w);
      for i = 1 to s.items do
        S.insert st ~tx:S.no_txn Schema.Stock ~key:(Schema.stock_key ~w ~i) (Schema.stock_row rng ~w ~i)
      done;
      for d = 1 to s.districts do
        let district = Schema.district_row rng ~w ~d in
        (* d_next_o_id must reflect the sizing, not the spec constant. *)
        let district = Storage.Record.set district Schema.F.d_next_o_id (I (s.orders + 1)) in
        S.insert st ~tx:S.no_txn Schema.District ~key:(Schema.district_key ~w ~d) district;
        for c = 1 to s.customers do
          S.insert st ~tx:S.no_txn Schema.Customer ~key:(Schema.customer_key ~w ~d ~c)
            (Schema.customer_row rng ~w ~d ~c);
          S.insert st ~tx:S.no_txn Schema.History ~key:(next_history_key ctx)
            (Schema.history_row rng ~w ~d ~c ~amount:10.0)
        done;
        (* Initial orders reference customers in a random permutation. *)
        let perm = Array.init s.customers (fun i -> i + 1) in
        Rng.shuffle rng perm;
        for o = 1 to s.orders do
          let c = perm.((o - 1) mod s.customers) in
          let ol_cnt = Rng.int_in rng 5 15 in
          S.insert st ~tx:S.no_txn Schema.Orders ~key:(Schema.orders_key ~w ~d ~o)
            (Schema.orders_row rng ~w ~d ~o ~c ~ol_cnt);
          for ol = 1 to ol_cnt do
            let i = 1 + Rng.int rng s.items in
            S.insert st ~tx:S.no_txn Schema.Order_line ~key:(Schema.order_line_key ~w ~d ~o ~ol)
              (Schema.order_line_row rng ~w ~d ~o ~ol ~i ~qty:5)
          done;
          (* The most recent 30 % of orders are still undelivered. *)
          if o > s.orders - (s.orders * 3 / 10) then
            S.insert st ~tx:S.no_txn Schema.New_order ~key:(Schema.new_order_key ~w ~d ~o)
              (Schema.new_order_row ~w ~d ~o)
        done
      done
    done

  (* ------------------------------------------------------------------ *)
  (* New-Order (clause 2.4): 45 % of the mix                             *)

  let new_order ctx =
    let s = ctx.sizing and rng = ctx.rng and st = ctx.store in
    let w = rand_w ctx and d = rand_d ctx in
    let c = nurand_customer ctx in
    let tx = S.begin_txn st in
    ignore (S.lookup st Schema.Warehouse ~key:(Schema.warehouse_key ~w));
    ignore (S.lookup st Schema.Customer ~key:(Schema.customer_key ~w ~d ~c));
    let o = ref 0 in
    let updated =
      S.update st ~tx Schema.District ~key:(Schema.district_key ~w ~d) (fun row ->
          o := get_int row Schema.F.d_next_o_id;
          set row Schema.F.d_next_o_id (I (!o + 1)))
    in
    assert updated;
    let o = !o in
    let ol_cnt = Rng.int_in rng 5 15 in
    let rollback = Rng.chance rng ctx.rollback_rate in
    let aborted = ref false in
    (try
       for ol = 1 to ol_cnt do
         if rollback && ol = ol_cnt then begin
           (* Invalid item: the transaction rolls back (clause 2.4.1.4). *)
           S.abort st tx;
           ctx.counts.rollbacks <- ctx.counts.rollbacks + 1;
           aborted := true;
           raise Exit
         end;
         let i = nurand_item ctx in
         ignore (S.lookup st Schema.Item ~key:(Schema.item_key ~i));
         let supply_w =
           if s.warehouses > 1 && Rng.chance rng 0.01 then 1 + Rng.int rng s.warehouses else w
         in
         let qty = Rng.int_in rng 1 10 in
         let ok =
           S.update st ~tx Schema.Stock ~key:(Schema.stock_key ~w:supply_w ~i) (fun row ->
               let q = get_int row Schema.F.s_quantity in
               let q' = if q >= qty + 10 then q - qty else q - qty + 91 in
               let row = set row Schema.F.s_quantity (I q') in
               let row =
                 set row Schema.F.s_ytd (F (get_float row Schema.F.s_ytd +. float_of_int qty))
               in
               let row =
                 set row Schema.F.s_order_cnt (I (get_int row Schema.F.s_order_cnt + 1))
               in
               if supply_w <> w then
                 set row Schema.F.s_remote_cnt (I (get_int row Schema.F.s_remote_cnt + 1))
               else row)
         in
         assert ok;
         S.insert st ~tx Schema.Order_line ~key:(Schema.order_line_key ~w ~d ~o ~ol)
           (Schema.order_line_row rng ~w ~d ~o ~ol ~i ~qty)
       done
     with Exit -> ());
    if not !aborted then begin
      S.insert st ~tx Schema.Orders ~key:(Schema.orders_key ~w ~d ~o)
        (Schema.orders_row rng ~w ~d ~o ~c ~ol_cnt);
      S.insert st ~tx Schema.New_order ~key:(Schema.new_order_key ~w ~d ~o)
        (Schema.new_order_row ~w ~d ~o);
      S.commit st tx;
      ctx.counts.new_order <- ctx.counts.new_order + 1
    end

  (* ------------------------------------------------------------------ *)
  (* Payment (clause 2.5): 43 %                                          *)

  let payment ctx =
    let rng = ctx.rng and st = ctx.store in
    let w = rand_w ctx and d = rand_d ctx in
    let c = select_customer ctx ~w ~d in
    let amount = 1.0 +. Rng.float rng 4999.0 in
    let tx = S.begin_txn st in
    let ok =
      S.update st ~tx Schema.Warehouse ~key:(Schema.warehouse_key ~w) (fun row ->
          set row Schema.F.w_ytd (F (get_float row Schema.F.w_ytd +. amount)))
    in
    assert ok;
    let ok =
      S.update st ~tx Schema.District ~key:(Schema.district_key ~w ~d) (fun row ->
          set row Schema.F.d_ytd (F (get_float row Schema.F.d_ytd +. amount)))
    in
    assert ok;
    let ok =
      S.update st ~tx Schema.Customer ~key:(Schema.customer_key ~w ~d ~c) (fun row ->
          let row = set row Schema.F.c_balance (F (get_float row Schema.F.c_balance -. amount)) in
          let row =
            set row Schema.F.c_ytd_payment
              (F (get_float row Schema.F.c_ytd_payment +. amount))
          in
          let row =
            set row Schema.F.c_payment_cnt (I (get_int row Schema.F.c_payment_cnt + 1))
          in
          if get_string row Schema.F.c_credit = "BC" then begin
            (* Bad credit: record the payment in c_data. A fixed 24-byte
               window is rewritten so the update log record stays small. *)
            let data = get_string row Schema.F.c_data in
            let info = Printf.sprintf "%04d%02d%05d%010.2f" w d c amount in
            let info = String.sub info 0 (min 24 (String.length info)) in
            let data' =
              if String.length data <= String.length info then info
              else info ^ String.sub data (String.length info) (String.length data - String.length info)
            in
            set row Schema.F.c_data (S data')
          end
          else row)
    in
    assert ok;
    S.insert st ~tx Schema.History ~key:(next_history_key ctx)
      (Schema.history_row rng ~w ~d ~c ~amount);
    S.commit st tx;
    ctx.counts.payment <- ctx.counts.payment + 1

  (* ------------------------------------------------------------------ *)
  (* Order-Status (clause 2.6): 4 %, read-only                           *)

  let order_status ctx =
    let rng = ctx.rng and st = ctx.store in
    let w = rand_w ctx and d = rand_d ctx in
    let c = select_customer ctx ~w ~d in
    ignore (S.lookup st Schema.Customer ~key:(Schema.customer_key ~w ~d ~c));
    (match S.lookup st Schema.District ~key:(Schema.district_key ~w ~d) with
    | None -> ()
    | Some district ->
        let next_o = get_int district Schema.F.d_next_o_id in
        let o = max 1 (next_o - 1 - Rng.int rng 20) in
        (match S.lookup st Schema.Orders ~key:(Schema.orders_key ~w ~d ~o) with
        | None -> ()
        | Some order ->
            let ol_cnt = get_int order 6 in
            for ol = 1 to ol_cnt do
              ignore (S.lookup st Schema.Order_line ~key:(Schema.order_line_key ~w ~d ~o ~ol))
            done));
    ctx.counts.order_status <- ctx.counts.order_status + 1

  (* ------------------------------------------------------------------ *)
  (* Delivery (clause 2.7): 4 %                                          *)

  let delivery ctx =
    let rng = ctx.rng and st = ctx.store in
    let w = rand_w ctx in
    let carrier = Rng.int_in rng 1 10 in
    let tx = S.begin_txn st in
    for d = 1 to ctx.sizing.districts do
      let lo = Schema.new_order_key ~w ~d ~o:0 in
      let hi = lo + 100_000_000 in
      match S.next_key_ge st Schema.New_order ~key:lo with
      | Some no_key when no_key < hi ->
          let o = Schema.orders_key_o no_key in
          ignore (S.delete st ~tx Schema.New_order ~key:no_key);
          let customer = ref 0 and ol_cnt = ref 0 in
          let ok =
            S.update st ~tx Schema.Orders ~key:(Schema.orders_key ~w ~d ~o) (fun row ->
                customer := get_int row 3;
                ol_cnt := get_int row 6;
                set row Schema.F.o_carrier_id (I carrier))
          in
          assert ok;
          let total = ref 0.0 in
          for ol = 1 to !ol_cnt do
            ignore
              (S.update st ~tx Schema.Order_line ~key:(Schema.order_line_key ~w ~d ~o ~ol)
                 (fun row ->
                   total := !total +. get_float row Schema.F.ol_amount;
                   set row Schema.F.ol_delivery_d (I 20070612)))
          done;
          ignore
            (S.update st ~tx Schema.Customer
               ~key:(Schema.customer_key ~w ~d ~c:!customer)
               (fun row ->
                 let row =
                   set row Schema.F.c_balance (F (get_float row Schema.F.c_balance +. !total))
                 in
                 set row Schema.F.c_delivery_cnt (I (get_int row Schema.F.c_delivery_cnt + 1))))
      | _ -> ()
    done;
    S.commit st tx;
    ctx.counts.delivery <- ctx.counts.delivery + 1

  (* ------------------------------------------------------------------ *)
  (* Stock-Level (clause 2.8): 4 %, read-only                            *)

  let stock_level ctx =
    let rng = ctx.rng and st = ctx.store in
    let w = rand_w ctx and d = rand_d ctx in
    let threshold = Rng.int_in rng 10 20 in
    (match S.lookup st Schema.District ~key:(Schema.district_key ~w ~d) with
    | None -> ()
    | Some district ->
        let next_o = get_int district Schema.F.d_next_o_id in
        let low = ref 0 in
        for o = max 1 (next_o - 20) to next_o - 1 do
          match S.lookup st Schema.Orders ~key:(Schema.orders_key ~w ~d ~o) with
          | None -> ()
          | Some order ->
              let ol_cnt = get_int order 6 in
              for ol = 1 to ol_cnt do
                match S.lookup st Schema.Order_line ~key:(Schema.order_line_key ~w ~d ~o ~ol) with
                | None -> ()
                | Some line -> (
                    let i = get_int line 4 in
                    match S.lookup st Schema.Stock ~key:(Schema.stock_key ~w ~i) with
                    | Some stock ->
                        if get_int stock Schema.F.s_quantity < threshold then incr low
                    | None -> ())
              done
        done);
    ctx.counts.stock_level <- ctx.counts.stock_level + 1

  (* ------------------------------------------------------------------ *)
  (* Mix                                                                 *)

  let run_transaction ctx =
    let p = Rng.int ctx.rng 100 in
    if p < 45 then new_order ctx
    else if p < 88 then payment ctx
    else if p < 92 then order_status ctx
    else if p < 96 then delivery ctx
    else stock_level ctx

  let run ctx ~n =
    for _ = 1 to n do
      run_transaction ctx
    done
end
