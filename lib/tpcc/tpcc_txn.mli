(** The five TPC-C transactions, parameterised over a {!Tpcc_store.S}.

    Simplifications relative to the full specification, all irrelevant to
    the write-reference behaviour the paper studies: customer selection is
    always by id (never by last name), Order-Status picks one recent order
    directly instead of scanning by customer, and the bad-credit Payment
    path rewrites a fixed-size window of [c_data] so that every update log
    record fits one flash log sector. *)

type sizing = {
  warehouses : int;
  districts : int;  (** per warehouse *)
  customers : int;  (** per district *)
  items : int;  (** also the stock rows per warehouse *)
  orders : int;  (** initially loaded orders per district *)
}

val spec_sizing : warehouses:int -> sizing
(** Full TPC-C cardinalities (one warehouse is roughly 100 MB). *)

val mini_sizing : sizing
(** A tiny database for tests and examples: 1 warehouse, 2 districts,
    60 customers, 200 items, 30 initial orders per district. *)

type counts = {
  mutable new_order : int;
  mutable payment : int;
  mutable order_status : int;
  mutable delivery : int;
  mutable stock_level : int;
  mutable rollbacks : int;
}

module Make (S : Tpcc_store.S) : sig
  type ctx

  val make_ctx : ?rollback_rate:float -> S.t -> seed:int -> sizing -> ctx
  (** [rollback_rate] is the fraction of New-Order transactions aborted by
      an invalid item (1 % per the spec). Set it to 0.0 when running on a
      store without abort support. *)

  val load : ctx -> unit
  (** Populate the database (items, warehouses, stock, districts,
      customers, initial orders). *)

  val new_order : ctx -> unit
  val payment : ctx -> unit
  val order_status : ctx -> unit
  val delivery : ctx -> unit
  val stock_level : ctx -> unit

  val run_transaction : ctx -> unit
  (** One transaction from the standard mix (45/43/4/4/4). *)

  val run : ctx -> n:int -> unit
  val counts : ctx -> counts
  val store : ctx -> S.t
end
