(** TPC-C schema: tables, composite-key packing, and row generation.

    Rows are {!Storage.Record.t} field lists. A few free-text columns are
    shorter than the TPC-C specification (e.g. [c_data] is capped at 200
    characters) so that any single physiological log record fits one
    512-byte flash log sector (bulk loads are logged too when run on the
    real engine). Cardinalities follow
    the spec: 10 districts per warehouse, 3 000 customers per district,
    100 000 items, 100 000 stock rows per warehouse. One warehouse is
    roughly 100 MB, so the paper's "1 GB database" is [scale = 10]. *)

type table =
  | Warehouse
  | District
  | Customer
  | History
  | New_order
  | Orders
  | Order_line
  | Item
  | Stock

val all_tables : table list
val table_name : table -> string

(** {1 Cardinalities} *)

val districts_per_warehouse : int
val customers_per_district : int
val items : int
val stock_per_warehouse : int
val initial_orders_per_district : int

(** {1 Composite-key packing}

    Every primary key packs into one 63-bit integer. *)

val warehouse_key : w:int -> int
val district_key : w:int -> d:int -> int
val customer_key : w:int -> d:int -> c:int -> int
val orders_key : w:int -> d:int -> o:int -> int
val new_order_key : w:int -> d:int -> o:int -> int
val order_line_key : w:int -> d:int -> o:int -> ol:int -> int
val item_key : i:int -> int
val stock_key : w:int -> i:int -> int

val orders_key_o : int -> int
(** Extract the order number back out of an orders/new-order key. *)

(** {1 Row generators} *)

val warehouse_row : Ipl_util.Rng.t -> w:int -> Storage.Record.t
val district_row : Ipl_util.Rng.t -> w:int -> d:int -> Storage.Record.t
val customer_row : Ipl_util.Rng.t -> w:int -> d:int -> c:int -> Storage.Record.t
val history_row : Ipl_util.Rng.t -> w:int -> d:int -> c:int -> amount:float -> Storage.Record.t
val new_order_row : w:int -> d:int -> o:int -> Storage.Record.t
val orders_row : Ipl_util.Rng.t -> w:int -> d:int -> o:int -> c:int -> ol_cnt:int -> Storage.Record.t
val order_line_row :
  Ipl_util.Rng.t -> w:int -> d:int -> o:int -> ol:int -> i:int -> qty:int -> Storage.Record.t
val item_row : Ipl_util.Rng.t -> i:int -> Storage.Record.t
val stock_row : Ipl_util.Rng.t -> w:int -> i:int -> Storage.Record.t

(** {1 Field indexes used by the transactions} *)

module F : sig
  val w_ytd : int
  val d_next_o_id : int
  val d_ytd : int
  val c_balance : int
  val c_ytd_payment : int
  val c_payment_cnt : int
  val c_delivery_cnt : int
  val c_data : int
  val c_credit : int
  val o_carrier_id : int
  val ol_delivery_d : int
  val ol_amount : int
  val s_quantity : int
  val s_ytd : int
  val s_order_cnt : int
  val s_remote_cnt : int
end

(** {1 Customer-name secondary index} *)

val last_name_number : string -> int option
(** Inverse of {!Ipl_util.Rng.last_name}: the syllable number in
    [\[0, 999\]] behind a generated last name. *)

val customer_name_key : w:int -> d:int -> name:int -> c:int -> int
(** Key for the by-last-name secondary index: all customers of a district
    sharing a last name are contiguous, ordered by customer number. *)

val customer_name_range : w:int -> d:int -> name:int -> int * int
(** Inclusive key range covering one (warehouse, district, last name). *)

(** {1 NURand constants (clause 2.1.6)} *)

val nurand_customer : Ipl_util.Rng.t -> int
(** Customer number in [1, 3000]. *)

val nurand_item : Ipl_util.Rng.t -> int
(** Item number in [1, 100000]. *)
