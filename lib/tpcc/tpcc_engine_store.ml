module Engine = Ipl_core.Ipl_engine
module Table = Relation.Table
module B = Btree.Bptree
module Record = Storage.Record

type t = {
  engine : Engine.t;
  tables : (Tpcc_schema.table, Table.t) Hashtbl.t;
  name_index : B.t;  (* (w, d, last name, c) -> customer number *)
}

let create engine =
  let tables = Hashtbl.create 16 in
  List.iter
    (fun table -> Hashtbl.replace tables table (Table.create engine))
    Tpcc_schema.all_tables;
  { engine; tables; name_index = B.create engine }

let engine t = t.engine
let table t name = Hashtbl.find t.tables name

let ok = function
  | Ok v -> v
  | Error e -> failwith ("Tpcc_engine_store: " ^ Engine.error_to_string e)

type tx = Engine.txn

let no_txn = Engine.no_txn
let begin_txn t = ok (Engine.begin_txn t.engine)
let commit t tx = ok (Engine.commit t.engine tx)
let abort t tx = ok (Engine.abort t.engine tx)

let customer_name_entry row =
  match Tpcc_schema.last_name_number (Record.get_string row 5) with
  | None -> None
  | Some name ->
      let c = Record.get_int row 0 in
      let d = Record.get_int row 1 in
      let w = Record.get_int row 2 in
      Some (Tpcc_schema.customer_name_key ~w ~d ~name ~c, c)

let insert t ~tx tbl ~key row =
  (match Table.insert (table t tbl) ~tx ~key row with
  | Ok () -> ()
  | Error msg ->
      failwith
        (Printf.sprintf "Tpcc_engine_store.insert: %s in %s (key %d)" msg
           (Tpcc_schema.table_name tbl) key));
  if tbl = Tpcc_schema.Customer then
    match customer_name_entry row with
    | Some (nk, c) -> (
        match B.insert t.name_index ~tx ~key:nk ~value:c with
        | Ok () -> ()
        | Error msg -> failwith ("Tpcc_engine_store: name index: " ^ msg))
    | None -> ()

let lookup t tbl ~key = Table.find (table t tbl) key

let update t ~tx tbl ~key f =
  match Table.update (table t tbl) ~tx ~key f with
  | Ok changed -> changed
  | Error msg -> failwith ("Tpcc_engine_store.update: " ^ msg)

let delete t ~tx tbl ~key =
  (* Keep the name index consistent (TPC-C never deletes customers, but
     the store stays general). *)
  (if tbl = Tpcc_schema.Customer then
     match lookup t tbl ~key with
     | Some row -> (
         match customer_name_entry row with
         | Some (nk, _) -> (
             match B.delete t.name_index ~tx ~key:nk with
             | Ok () -> ()
             | Error _ -> () (* no index entry: nothing to unlink *))
         | None -> ())
     | None -> ());
  match Table.delete (table t tbl) ~tx ~key with
  | Ok changed -> changed
  | Error msg -> failwith ("Tpcc_engine_store.delete: " ^ msg)

let next_key_ge t tbl ~key = Table.next_key_ge (table t tbl) key

let customer_by_last_name t ~w ~d ~last =
  match Tpcc_schema.last_name_number last with
  | None -> None
  | Some name -> (
      let lo, hi = Tpcc_schema.customer_name_range ~w ~d ~name in
      match B.range t.name_index ~lo ~hi with
      | [] -> None
      | matches -> (
          (* Position ceil(n/2), 1-based (clause 2.5.2.2). *)
          let _, c = List.nth matches ((List.length matches - 1) / 2) in
          match lookup t Tpcc_schema.Customer ~key:(Tpcc_schema.customer_key ~w ~d ~c) with
          | Some row -> Some (c, row)
          | None -> None))

let index_height t tbl =
  B.height (B.attach t.engine ~header:(Table.index_header (table t tbl)))

let row_count t tbl = Table.count (table t tbl)
