type result = {
  trace : Reftrace.Trace.t;
  counts : Tpcc_txn.counts;
  db_pages : int;
  transactions : int;
}

let trace_name ~warehouses ~buffer_mb ~users =
  let db = if warehouses >= 10 then Printf.sprintf "%dG" (warehouses / 10) else "100M" in
  Printf.sprintf "%s.%dM.%du" db buffer_mb users

module Layout_txn = Tpcc_txn.Make (Tpcc_layout_store)

let generate_trace ?sizing ?(seed = 42) ~warehouses ~buffer_mb ~users ~transactions () =
  let sizing =
    match sizing with Some s -> s | None -> Tpcc_txn.spec_sizing ~warehouses
  in
  let name = trace_name ~warehouses ~buffer_mb ~users in
  let store =
    Tpcc_layout_store.create ~buffer_bytes:(buffer_mb * 1024 * 1024) ~name ()
  in
  let ctx = Layout_txn.make_ctx store ~seed sizing in
  Layout_txn.load ctx;
  Tpcc_layout_store.begin_tracing store;
  Layout_txn.run ctx ~n:transactions;
  let trace = Tpcc_layout_store.finish store in
  {
    trace;
    counts = Layout_txn.counts ctx;
    db_pages = Tpcc_layout_store.db_pages store;
    transactions;
  }

(* Load once, then generate one trace per buffer-pool size. Each phase
   runs [transactions] more transactions against the same (aging) database
   with a fresh pool — equivalent to the paper re-running Hammerora per
   configuration. *)
let generate_trace_series ?sizing ?(seed = 42) ~warehouses ~users ~transactions ~buffer_mbs ()
    =
  let sizing =
    match sizing with Some s -> s | None -> Tpcc_txn.spec_sizing ~warehouses
  in
  let store =
    Tpcc_layout_store.create
      ~buffer_bytes:(16 * 1024 * 1024)
      ~name:(trace_name ~warehouses ~buffer_mb:0 ~users)
      ()
  in
  let ctx = Layout_txn.make_ctx store ~seed sizing in
  Layout_txn.load ctx;
  List.map
    (fun buffer_mb ->
      Tpcc_layout_store.set_buffer_bytes store (buffer_mb * 1024 * 1024);
      Tpcc_layout_store.begin_tracing store;
      Layout_txn.run ctx ~n:transactions;
      let trace = Tpcc_layout_store.finish store in
      let trace = Reftrace.Trace.rename trace (trace_name ~warehouses ~buffer_mb ~users) in
      (buffer_mb, trace))
    buffer_mbs

module Engine_run = struct
  module Engine_txn = Tpcc_txn.Make (Tpcc_engine_store)

  type t = {
    engine : Ipl_core.Ipl_engine.t;
    store : Tpcc_engine_store.t;
    counts : Tpcc_txn.counts;
  }

  let checkpoint engine =
    match Ipl_core.Ipl_engine.checkpoint engine with
    | Ok () -> ()
    | Error e -> failwith ("Tpcc_driver: " ^ Ipl_core.Ipl_engine.error_to_string e)

  let run ?(sizing = Tpcc_txn.mini_sizing) ?(seed = 42) ?config ~chip_blocks ~transactions () =
    let config =
      match config with
      | Some c -> c
      | None -> { Ipl_core.Ipl_config.default with Ipl_core.Ipl_config.recovery_enabled = true }
    in
    let chip =
      Flash_sim.Flash_chip.create (Flash_sim.Flash_config.default ~num_blocks:chip_blocks ())
    in
    let engine = Ipl_core.Ipl_engine.create ~config chip in
    let store = Tpcc_engine_store.create engine in
    (* New-Order rollbacks need abort support, which requires recovery. *)
    let rollback_rate = if config.Ipl_core.Ipl_config.recovery_enabled then 0.01 else 0.0 in
    let ctx = Engine_txn.make_ctx ~rollback_rate store ~seed sizing in
    Engine_txn.load ctx;
    checkpoint engine;
    Engine_txn.run ctx ~n:transactions;
    checkpoint engine;
    { engine; store; counts = Engine_txn.counts ctx }
end
