module Rng = Ipl_util.Rng
open Storage.Record

type table =
  | Warehouse
  | District
  | Customer
  | History
  | New_order
  | Orders
  | Order_line
  | Item
  | Stock

let all_tables =
  [ Warehouse; District; Customer; History; New_order; Orders; Order_line; Item; Stock ]

let table_name = function
  | Warehouse -> "warehouse"
  | District -> "district"
  | Customer -> "customer"
  | History -> "history"
  | New_order -> "new_order"
  | Orders -> "orders"
  | Order_line -> "order_line"
  | Item -> "item"
  | Stock -> "stock"

(* c_data is the longest mutable string: a full-field rewrite logs a
   before+after image, and both must fit one flash log sector together
   with the record framing. Checked against the real chip geometry
   instead of assuming 512. *)
let c_data_cap = 200

let () =
  let sector =
    (Flash_sim.Flash_config.default ()).Flash_sim.Flash_config.sector_size
  in
  assert (2 * c_data_cap < sector)

let districts_per_warehouse = 10
let customers_per_district = 3000
let items = 100_000
let stock_per_warehouse = 100_000
let initial_orders_per_district = 3000

(* Key packing. Bounds: w <= 9999, d <= 10, c <= 99_999, o < 10^8,
   ol <= 99, i <= 999_999. *)
let warehouse_key ~w = w
let district_key ~w ~d = (w * 100) + d
let customer_key ~w ~d ~c = (district_key ~w ~d * 100_000) + c
let orders_key ~w ~d ~o = (district_key ~w ~d * 100_000_000) + o
let new_order_key = orders_key
let order_line_key ~w ~d ~o ~ol = (orders_key ~w ~d ~o * 100) + ol
let item_key ~i = i
let stock_key ~w ~i = (w * 1_000_000) + i
let orders_key_o k = k mod 100_000_000

(* Shared column helpers. *)
let address rng =
  [
    S (Rng.alpha_string rng ~min:10 ~max:20);
    (* street-1 *)
    S (Rng.alpha_string rng ~min:10 ~max:20);
    (* street-2 *)
    S (Rng.alpha_string rng ~min:10 ~max:20);
    (* city *)
    S (Rng.alpha_string rng ~min:2 ~max:2);
    (* state *)
    S (Rng.numeric_string rng ~len:9);
    (* zip *)
  ]

let now_stamp = 20070612 (* a fixed "current date" keeps runs deterministic *)

let warehouse_row rng ~w =
  [ I w; S (Rng.alpha_string rng ~min:6 ~max:10) ]
  @ address rng
  @ [ F (Rng.float rng 0.2); (* w_tax *) F 300000.0 (* w_ytd *) ]

let district_row rng ~w ~d =
  [ I d; I w; S (Rng.alpha_string rng ~min:6 ~max:10) ]
  @ address rng
  @ [
      F (Rng.float rng 0.2);
      (* d_tax *)
      F 30000.0;
      (* d_ytd *)
      I (initial_orders_per_district + 1) (* d_next_o_id *);
    ]

let customer_row rng ~w ~d ~c =
  let last = Rng.last_name (if c <= 1000 then c - 1 else Rng.nurand rng ~a:255 ~x:0 ~y:999 ~c:123) in
  [
    I c;
    I d;
    I w;
    S (Rng.alpha_string rng ~min:8 ~max:16);
    (* c_first *)
    S "OE";
    S last;
  ]
  @ address rng
  @ [
      S (Rng.numeric_string rng ~len:16);
      (* c_phone *)
      I now_stamp;
      (* c_since *)
      S (if Rng.chance rng 0.1 then "BC" else "GC");
      F 50000.0;
      (* c_credit_lim *)
      F (Rng.float rng 0.5);
      (* c_discount *)
      F (-10.0);
      (* c_balance *)
      F 10.0;
      (* c_ytd_payment *)
      I 1;
      (* c_payment_cnt *)
      I 0;
      (* c_delivery_cnt *)
      S (Rng.alpha_string rng ~min:50 ~max:c_data_cap) (* c_data, capped *);
    ]

let history_row rng ~w ~d ~c ~amount =
  [ I c; I d; I w; I d; I w; I now_stamp; F amount; S (Rng.alpha_string rng ~min:12 ~max:24) ]

let new_order_row ~w ~d ~o = [ I o; I d; I w ]

let orders_row rng ~w ~d ~o ~c ~ol_cnt =
  [
    I o;
    I d;
    I w;
    I c;
    I now_stamp;
    I (if o < 2101 then 1 + Rng.int rng 10 else 0);
    (* o_carrier_id, 0 = null *)
    I ol_cnt;
    I 1 (* o_all_local *);
  ]

let order_line_row rng ~w ~d ~o ~ol ~i ~qty =
  [
    I o;
    I d;
    I w;
    I ol;
    I i;
    I w;
    (* ol_supply_w_id *)
    I (if o < 2101 then now_stamp else 0);
    (* ol_delivery_d, 0 = null *)
    I qty;
    F (if o < 2101 then 0.0 else Rng.float rng 9999.99);
    (* ol_amount *)
    S (Rng.alpha_string rng ~min:24 ~max:24) (* ol_dist_info *);
  ]

let item_row rng ~i =
  [
    I i;
    I (1 + Rng.int rng 10_000);
    (* i_im_id *)
    S (Rng.alpha_string rng ~min:14 ~max:24);
    F (1.0 +. Rng.float rng 99.0);
    S (Rng.alpha_string rng ~min:26 ~max:50) (* i_data *);
  ]

(* The four mutable stock counters sit together right after the key
   columns: a New-Order stock update then patches one small contiguous
   byte range instead of a range spanning the ten 24-byte district-info
   strings (which would not fit a log sector; see [c_data_cap]). *)
let stock_row rng ~w ~i =
  [
    I i;
    I w;
    I (10 + Rng.int rng 91);
    (* s_quantity *)
    F 0.0;
    (* s_ytd *)
    I 0;
    (* s_order_cnt *)
    I 0 (* s_remote_cnt *);
  ]
  @ List.init districts_per_warehouse (fun _ -> S (Rng.alpha_string rng ~min:24 ~max:24))
  @ [ S (Rng.alpha_string rng ~min:26 ~max:50) (* s_data *) ]

module F = struct
  (* warehouse: 0 w_id, 1 name, 2-6 address, 7 tax, 8 ytd *)
  let w_ytd = 8

  (* district: 0 d_id, 1 w_id, 2 name, 3-7 address, 8 tax, 9 ytd, 10 next_o *)
  let d_ytd = 9
  let d_next_o_id = 10

  (* customer: 0 c_id, 1 d, 2 w, 3 first, 4 middle, 5 last, 6-10 address,
     11 phone, 12 since, 13 credit, 14 credit_lim, 15 discount, 16 balance,
     17 ytd_payment, 18 payment_cnt, 19 delivery_cnt, 20 data *)
  let c_credit = 13
  let c_balance = 16
  let c_ytd_payment = 17
  let c_payment_cnt = 18
  let c_delivery_cnt = 19
  let c_data = 20

  (* orders: 5 o_carrier_id *)
  let o_carrier_id = 5

  (* order_line: 6 ol_delivery_d, 8 ol_amount *)
  let ol_delivery_d = 6
  let ol_amount = 8

  (* stock: 2 s_quantity, 3 s_ytd, 4 s_order_cnt, 5 s_remote_cnt *)
  let s_quantity = 2
  let s_ytd = 3
  let s_order_cnt = 4
  let s_remote_cnt = 5
end

(* Inverse of Rng.last_name, for building the customer-name secondary
   index. *)
let name_numbers = lazy (
  let h = Hashtbl.create 1000 in
  for n = 0 to 999 do
    Hashtbl.replace h (Rng.last_name n) n
  done;
  h)

let last_name_number s = Hashtbl.find_opt (Lazy.force name_numbers) s

(* Secondary-index key: customers with the same (w, d, last name) are
   adjacent, ordered by customer number. *)
let customer_name_key ~w ~d ~name ~c = (((district_key ~w ~d * 1000) + name) * 100_000) + c

let customer_name_range ~w ~d ~name =
  let base = (district_key ~w ~d * 1000) + name in
  (base * 100_000, (base * 100_000) + 99_999)

let nurand_customer rng = Rng.nurand rng ~a:1023 ~x:1 ~y:customers_per_district ~c:259
let nurand_item rng = Rng.nurand rng ~a:8191 ~x:1 ~y:items ~c:7911
