(** Logical TPC-C store for reference-trace generation (Section 4.2.1).

    Rows are kept in memory; what is modelled faithfully is the {e page
    layout} (rows packed into 8 KB heap pages per table, index entries
    packed into leaf pages by key proximity) and the {e buffer pool}
    (LRU over all pages, physical page writes on dirty eviction). Every
    mutation emits a physiological log event sized exactly as the IPL
    engine would encode it; every dirty eviction emits a physical
    page-write event — together these form the same kind of trace the
    paper collected from a commercial server under Hammerora.

    [next_key_ge] is only supported for the [New_order] table (the one
    Delivery needs ordered access to). *)

include Tpcc_store.S

val create : ?page_size:int -> buffer_bytes:int -> name:string -> unit -> t

val set_buffer_bytes : t -> int -> unit
(** Swap in a fresh (cold) buffer pool of the given size. Used to generate
    traces for several pool sizes from one loaded database. *)

val begin_tracing : t -> unit
(** Discard all events recorded so far. Called after the bulk load so the
    trace covers only the benchmark run, as the paper's traces do. *)

val finish : t -> Reftrace.Trace.t
(** Flush the buffer pool and build the trace. The store must not be used
    afterwards. *)

val db_pages : t -> int
(** Pages allocated so far (heap + index leaves). *)

val transactions : t -> int
(** Committed transactions. *)
