module Record = Storage.Record
module Pool = Bufmgr.Buffer_pool
module Trace = Reftrace.Trace
module IntSet = Set.Make (Int)

type fill = { mutable page : int; mutable free : int }

(* Undo entries for transactional rollback (newest first). *)
type undo =
  | U_insert of { table : Tpcc_schema.table; key : int }
  | U_update of { gk : int; before : bytes }
  | U_delete of { table : Tpcc_schema.table; key : int; before : bytes; page : int }

type t = {
  name : string;
  page_size : int;
  arena : Ipl_util.Byte_arena.t;  (* encoded rows, addressed by handle *)
  rows : (int, int) Hashtbl.t;  (* packed (table, key) -> arena handle *)
  placement : (int, int) Hashtbl.t;  (* packed (table, key) -> heap page *)
  fills : fill array;  (* per table *)
  index_pages : (int, int) Hashtbl.t;  (* packed (table, leaf bucket) -> page *)
  mutable new_order_keys : IntSet.t;  (* ordered access for Delivery *)
  names : (int, IntSet.t) Hashtbl.t;  (* (w,d,last-name) -> customer numbers *)
  undo_log : (int, undo list ref) Hashtbl.t;  (* active txn -> undo entries *)
  mutable next_page : int;
  mutable next_txn : int;
  mutable committed : int;
  mutable pool : unit Pool.t;
  mutable builder : Trace.builder;
}

let table_idx = function
  | Tpcc_schema.Warehouse -> 0
  | Tpcc_schema.District -> 1
  | Tpcc_schema.Customer -> 2
  | Tpcc_schema.History -> 3
  | Tpcc_schema.New_order -> 4
  | Tpcc_schema.Orders -> 5
  | Tpcc_schema.Order_line -> 6
  | Tpcc_schema.Item -> 7
  | Tpcc_schema.Stock -> 8

let pack table key = (table_idx table lsl 48) lor key

(* Encoded sizes of the physiological log records the IPL engine would
   produce (header 11 bytes; see Log_record). *)
let insert_log_size len = 11 + 2 + len
let delete_log_size len = 11 + 2 + len
let update_range_log_size dlen = 11 + 4 + (2 * dlen)
let update_full_log_size before after = 11 + 4 + before + after
let index_entry_log_size = 11 + 2 + 16 (* 16-byte (key, rowid) entries *)

let create ?(page_size = Ipl_core.Ipl_config.default.Ipl_core.Ipl_config.page_size) ~buffer_bytes
    ~name () =
  let capacity = max 1 (buffer_bytes / page_size) in
  let builder = Trace.builder ~name ~db_pages:0 in
  let rec t =
    lazy
      (let pool =
         Pool.create ~capacity
           ~fetch:(fun _ -> ())
           ~write_back:(fun page () -> Trace.add_page_write (Lazy.force t).builder ~page)
           ()
       in
       mk_store pool)
  and mk_store pool = {
    name;
    page_size;
    arena = Ipl_util.Byte_arena.create ();
    rows = Hashtbl.create (1 lsl 20);
    placement = Hashtbl.create (1 lsl 20);
    fills = Array.init 9 (fun _ -> { page = -1; free = 0 });
    index_pages = Hashtbl.create 4096;
    new_order_keys = IntSet.empty;
    names = Hashtbl.create 4096;
    undo_log = Hashtbl.create 8;
    next_page = 0;
    next_txn = 1;
    committed = 0;
    pool;
    builder;
  }
  in
  Lazy.force t

let alloc_page t =
  let p = t.next_page in
  t.next_page <- p + 1;
  p

let touch t page ~dirty = Pool.with_page t.pool page ~dirty (fun () -> ())

(* Index leaves hold ~ (page_size - header) / (16B entry + 4B slot). *)
let entries_per_leaf t = (t.page_size - 8) / 20

let index_leaf t table key =
  let bucket = pack table (key / entries_per_leaf t) in
  match Hashtbl.find_opt t.index_pages bucket with
  | Some page -> page
  | None ->
      let page = alloc_page t in
      Hashtbl.replace t.index_pages bucket page;
      page

let heap_place t table len =
  let fill = t.fills.(table_idx table) in
  let needed = len + 4 in
  if fill.page < 0 || fill.free < needed then begin
    fill.page <- alloc_page t;
    fill.free <- t.page_size - 8
  end;
  fill.free <- fill.free - needed;
  fill.page

(* Customer-name registry maintenance (by encoded row). *)
let name_registry_key row =
  match Tpcc_schema.last_name_number (Record.get_string row 5) with
  | None -> None
  | Some name ->
      let d = Record.get_int row 1 and w = Record.get_int row 2 in
      Some ((Tpcc_schema.district_key ~w ~d * 1000) + name, Record.get_int row 0)

let register_customer_name t data =
  match name_registry_key (Record.decode data) with
  | Some (nk, c) ->
      let cur = Option.value ~default:IntSet.empty (Hashtbl.find_opt t.names nk) in
      Hashtbl.replace t.names nk (IntSet.add c cur)
  | None -> ()

let unregister_customer_name t data =
  match name_registry_key (Record.decode data) with
  | Some (nk, c) -> (
      match Hashtbl.find_opt t.names nk with
      | Some set -> Hashtbl.replace t.names nk (IntSet.remove c set)
      | None -> ())
  | None -> ()

type tx = int

let no_txn = 0

let begin_txn t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  Hashtbl.replace t.undo_log id (ref []);
  id

let push_undo t tx entry =
  if tx <> 0 then
    match Hashtbl.find_opt t.undo_log tx with
    | Some entries -> entries := entry :: !entries
    | None -> ()

let commit t tx =
  Hashtbl.remove t.undo_log tx;
  t.committed <- t.committed + 1

let insert t ~tx table ~key row =
  let gk = pack table key in
  if Hashtbl.mem t.rows gk then
    failwith
      (Printf.sprintf "Tpcc_layout_store.insert: duplicate key %d in %s" key
         (Tpcc_schema.table_name table));
  let data = Record.encode row in
  let page = heap_place t table (Bytes.length data) in
  Hashtbl.replace t.rows gk (Ipl_util.Byte_arena.add t.arena data);
  Hashtbl.replace t.placement gk page;
  touch t page ~dirty:true;
  Trace.add_log t.builder ~op:Trace.Insert ~page ~length:(insert_log_size (Bytes.length data));
  (* Index maintenance is physiologically a node-page modification; the
     commercial server the paper traced logs it as an update (its Table 4
     is 89 % updates). *)
  let leaf = index_leaf t table key in
  touch t leaf ~dirty:true;
  Trace.add_log t.builder ~op:Trace.Update ~page:leaf ~length:index_entry_log_size;
  push_undo t tx (U_insert { table; key });
  if table = Tpcc_schema.New_order then t.new_order_keys <- IntSet.add key t.new_order_keys;
  if table = Tpcc_schema.Customer then register_customer_name t data

let lookup t table ~key =
  let gk = pack table key in
  match Hashtbl.find_opt t.rows gk with
  | None -> None
  | Some handle ->
      touch t (index_leaf t table key) ~dirty:false;
      touch t (Hashtbl.find t.placement gk) ~dirty:false;
      Some (Record.decode (Ipl_util.Byte_arena.get t.arena handle))

let update t ~tx table ~key f =
  let gk = pack table key in
  match Hashtbl.find_opt t.rows gk with
  | None -> false
  | Some handle ->
      touch t (index_leaf t table key) ~dirty:false;
      let before = Ipl_util.Byte_arena.get t.arena handle in
      let after = Record.encode (f (Record.decode before)) in
      let page = Hashtbl.find t.placement gk in
      touch t page ~dirty:true;
      let length =
        if Bytes.length before = Bytes.length after then
          match Ipl_util.Diff.minimal_range before after with
          | None -> update_range_log_size 1
          | Some (_, dlen) -> update_range_log_size dlen
        else update_full_log_size (Bytes.length before) (Bytes.length after)
      in
      Trace.add_log t.builder ~op:Trace.Update ~page ~length;
      push_undo t tx (U_update { gk; before });
      let handle' = Ipl_util.Byte_arena.set t.arena handle after in
      if handle' <> handle then Hashtbl.replace t.rows gk handle';
      true

let delete t ~tx table ~key =
  let gk = pack table key in
  match Hashtbl.find_opt t.rows gk with
  | None -> false
  | Some handle ->
      let page = Hashtbl.find t.placement gk in
      touch t page ~dirty:true;
      Trace.add_log t.builder ~op:Trace.Delete ~page
        ~length:(delete_log_size (Ipl_util.Byte_arena.length t.arena handle));
      let leaf = index_leaf t table key in
      touch t leaf ~dirty:true;
      Trace.add_log t.builder ~op:Trace.Update ~page:leaf ~length:index_entry_log_size;
      push_undo t tx
        (U_delete { table; key; before = Ipl_util.Byte_arena.get t.arena handle; page });
      Hashtbl.remove t.rows gk;
      Hashtbl.remove t.placement gk;
      if table = Tpcc_schema.New_order then
        t.new_order_keys <- IntSet.remove key t.new_order_keys;
      if table = Tpcc_schema.Customer then
        unregister_customer_name t (Ipl_util.Byte_arena.get t.arena handle);
      true

(* Rollback: revert the store's logical state (newest change first). The
   trace keeps the records already emitted — the traced commercial server
   likewise leaves its log intact and compensates. *)
let abort t tx =
  match Hashtbl.find_opt t.undo_log tx with
  | None -> ()
  | Some entries ->
      List.iter
        (fun entry ->
          match entry with
          | U_insert { table; key } ->
              let gk = pack table key in
              (if table = Tpcc_schema.Customer then
                 match Hashtbl.find_opt t.rows gk with
                 | Some handle -> unregister_customer_name t (Ipl_util.Byte_arena.get t.arena handle)
                 | None -> ());
              Hashtbl.remove t.rows gk;
              Hashtbl.remove t.placement gk;
              if table = Tpcc_schema.New_order then
                t.new_order_keys <- IntSet.remove key t.new_order_keys
          | U_update { gk; before } -> (
              match Hashtbl.find_opt t.rows gk with
              | Some handle ->
                  Hashtbl.replace t.rows gk (Ipl_util.Byte_arena.set t.arena handle before)
              | None -> ())
          | U_delete { table; key; before; page } ->
              let gk = pack table key in
              Hashtbl.replace t.rows gk (Ipl_util.Byte_arena.add t.arena before);
              Hashtbl.replace t.placement gk page;
              if table = Tpcc_schema.Customer then register_customer_name t before;
              if table = Tpcc_schema.New_order then
                t.new_order_keys <- IntSet.add key t.new_order_keys)
        !entries;
      Hashtbl.remove t.undo_log tx

(* The name index's leaf pages live in the same modelled id space as the
   primary indexes; a lookup touches its leaf (clean). *)
let name_index_tag = 9

let customer_by_last_name t ~w ~d ~last =
  match Tpcc_schema.last_name_number last with
  | None -> None
  | Some name -> (
      let nk = (Tpcc_schema.district_key ~w ~d * 1000) + name in
      let bucket = (name_index_tag lsl 48) lor (nk / entries_per_leaf t) in
      let leaf =
        match Hashtbl.find_opt t.index_pages bucket with
        | Some page -> page
        | None ->
            let page = alloc_page t in
            Hashtbl.replace t.index_pages bucket page;
            page
      in
      touch t leaf ~dirty:false;
      match Hashtbl.find_opt t.names nk with
      | None -> None
      | Some set when IntSet.is_empty set -> None
      | Some set ->
          let n = IntSet.cardinal set in
          let target = (n - 1) / 2 in
          let i = ref 0 and picked = ref None in
          IntSet.iter
            (fun c ->
              if !i = target && !picked = None then picked := Some c;
              incr i)
            set;
          let c = Option.get !picked in
          Option.map (fun row -> (c, row)) (lookup t Tpcc_schema.Customer ~key:(Tpcc_schema.customer_key ~w ~d ~c)))

let next_key_ge t table ~key =
  match table with
  | Tpcc_schema.New_order -> IntSet.find_first_opt (fun k -> k >= key) t.new_order_keys
  | _ -> failwith "Tpcc_layout_store.next_key_ge: only supported for New_order"

let set_buffer_bytes t bytes =
  (* Replace the buffer pool (fresh, cold) without emitting any events for
     the pages cached in the old one. *)
  let capacity = max 1 (bytes / t.page_size) in
  t.pool <-
    Pool.create ~capacity
      ~fetch:(fun _ -> ())
      ~write_back:(fun page () -> Trace.add_page_write t.builder ~page)
      ()

let begin_tracing t =
  (* Discard everything recorded so far (the bulk load): the paper's
     traces cover only the benchmark run against a pre-loaded database.
     The buffer pool keeps its (warm) state. *)
  t.builder <- Trace.builder ~name:t.name ~db_pages:0

let finish t =
  Pool.flush_all t.pool;
  Trace.build ~db_pages:t.next_page t.builder

let db_pages t = t.next_page
let transactions t = t.committed
