module Engine = Ipl_core.Ipl_engine
module Page = Storage.Page

type rowid = int

let rowid ~page ~slot = (page lsl 16) lor slot
let page_of_rowid r = r lsr 16
let slot_of_rowid r = r land 0xFFFF

(* Directory pages hold the member-page list: slot 0 is a meta record
   [magic:u8 0xHA][next_dir:u32], the other slots are 8-byte page ids. *)
let dir_magic = 0xDA

type t = {
  engine : Engine.t;
  header : int;
  mutable dirs : int list;  (* directory chain, head first *)
  mutable pages : int list;  (* member pages, allocation order (reversed) *)
  mutable fill : int;  (* current fill page, -1 none *)
}

let encode_dir_meta ~next =
  let b = Bytes.create 5 in
  Bytes.set_uint8 b 0 dir_magic;
  Bytes.set_int32_le b 1 (Int32.of_int next);
  b

let no_next = 0xFFFFFFFF

let encode_page_id pid =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int pid);
  b

let fail = function
  | Ok v -> v
  | Error e -> failwith ("Heap: " ^ Engine.error_to_string e)

let new_dir_page t =
  let pid = fail (Engine.allocate_page t.engine) in
  (match Engine.insert t.engine ~tx:Engine.no_txn ~page:pid (encode_dir_meta ~next:no_next) with
  | Ok 0 -> ()
  | _ -> failwith "Heap: directory meta not at slot 0");
  pid

let create engine =
  let t = { engine; header = 0; dirs = []; pages = []; fill = -1 } in
  let head = new_dir_page t in
  { t with header = head; dirs = [ head ] }

let header t = t.header

let dir_entries t dir =
  fail
  @@ Engine.with_page t.engine dir (fun p ->
      let meta =
        match Page.read p 0 with
        | Some m when Bytes.get_uint8 m 0 = dir_magic ->
            Int32.to_int (Bytes.get_int32_le m 1) land 0xFFFFFFFF
        | _ -> failwith "Heap: bad directory page"
      in
      let pages = ref [] in
      Page.iter
        (fun slot data ->
          if slot <> 0 then pages := Int64.to_int (Bytes.get_int64_le data 0) :: !pages)
        p;
      (meta, List.rev !pages))

let attach engine ~header =
  let t = { engine; header; dirs = []; pages = []; fill = -1 } in
  let rec walk dir acc_dirs acc_pages =
    let next, pages = dir_entries t dir in
    let acc_dirs = dir :: acc_dirs and acc_pages = List.rev_append pages acc_pages in
    if next = no_next then (List.rev acc_dirs, acc_pages) else walk next acc_dirs acc_pages
  in
  let dirs, pages_rev = walk header [] [] in
  t.dirs <- dirs;
  t.pages <- pages_rev;
  (t.fill <- (match pages_rev with pid :: _ -> pid | [] -> -1));
  t

(* Register a fresh member page in the directory, growing the chain when
   the tail directory page is full. *)
let register_page t pid =
  let tail = List.nth t.dirs (List.length t.dirs - 1) in
  (match Engine.insert t.engine ~tx:Engine.no_txn ~page:tail (encode_page_id pid) with
  | Ok _ -> ()
  | Error _ ->
      let fresh = new_dir_page t in
      (* Link: patch the old tail's next pointer, then record the page. *)
      let ptr = Bytes.create 4 in
      Bytes.set_int32_le ptr 0 (Int32.of_int fresh);
      fail (Engine.update_range t.engine ~tx:Engine.no_txn ~page:tail ~slot:0 ~offset:1 ptr);
      t.dirs <- t.dirs @ [ fresh ];
      ignore (fail (Engine.insert t.engine ~tx:Engine.no_txn ~page:fresh (encode_page_id pid))));
  t.pages <- pid :: t.pages

let insert t ~tx data =
  let try_page pid =
    match Engine.insert t.engine ~tx ~page:pid data with
    | Ok slot -> Some (rowid ~page:pid ~slot)
    | Error _ -> None
  in
  let from_fill = if t.fill >= 0 then try_page t.fill else None in
  match from_fill with
  | Some rid -> Ok rid
  | None -> (
      let pid = fail (Engine.allocate_page t.engine) in
      register_page t pid;
      t.fill <- pid;
      match Engine.insert t.engine ~tx ~page:pid data with
      | Ok slot -> Ok (rowid ~page:pid ~slot)
      | Error e -> Error (Engine.error_to_string e))

let read t rid = fail (Engine.read t.engine ~page:(page_of_rowid rid) ~slot:(slot_of_rowid rid))

let update t ~tx rid data =
  Result.map_error Engine.error_to_string
    (Engine.update t.engine ~tx ~page:(page_of_rowid rid) ~slot:(slot_of_rowid rid) data)

let delete t ~tx rid =
  Result.map_error Engine.error_to_string
    (Engine.delete t.engine ~tx ~page:(page_of_rowid rid) ~slot:(slot_of_rowid rid))

let iter t f =
  List.iter
    (fun pid ->
      (* Collect first: [f] may re-enter the engine, and pages must not be
         mutated during iteration anyway. *)
      let rows = ref [] in
      fail
        (Engine.with_page t.engine pid (fun p ->
             Page.iter (fun slot data -> rows := (rowid ~page:pid ~slot, data) :: !rows) p));
      List.iter (fun (rid, data) -> f rid data) (List.rev !rows))
    (List.rev t.pages)

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun rid data -> acc := f !acc rid data);
  !acc

let page_count t = List.length t.pages

let record_count t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n
