(** Heap files: unordered collections of records spread over IPL pages.

    The set of member pages is itself stored in (logged) directory pages,
    so a heap survives restarts given its directory-head page id. Records
    are addressed by row ids (page, slot) that stay stable for the row's
    lifetime. *)

type t

type rowid = int
(** Packed (page, slot). *)

val page_of_rowid : rowid -> int
val slot_of_rowid : rowid -> int

val create : Ipl_core.Ipl_engine.t -> t
val attach : Ipl_core.Ipl_engine.t -> header:int -> t
(** Re-open by directory-head page id (after restart). *)

val header : t -> int

val insert : t -> tx:Ipl_core.Ipl_engine.txn -> bytes -> (rowid, string) result
(** Places the record in a page with room, allocating a new member page
    when needed. *)

val read : t -> rowid -> bytes option
val update : t -> tx:Ipl_core.Ipl_engine.txn -> rowid -> bytes -> (unit, string) result
val delete : t -> tx:Ipl_core.Ipl_engine.txn -> rowid -> (unit, string) result

val iter : t -> (rowid -> bytes -> unit) -> unit
(** Every live record, page by page in allocation order. *)

val fold : t -> init:'a -> f:('a -> rowid -> bytes -> 'a) -> 'a

val page_count : t -> int
(** Member data pages (directory pages excluded). *)

val record_count : t -> int
(** Live records (full scan). *)
