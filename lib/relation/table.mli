(** Tables: a heap file of encoded rows plus a B+-tree primary index,
    all living in IPL pages.

    This is the access-method layer a flash-resident database exposes:
    point lookups and ordered scans go through the index; full scans walk
    the heap pages directly, which is the access pattern of the paper's
    Q1-style queries. A table is identified by the pair of its heap and
    index header page ids, so it can be re-attached after a restart. *)

type t

val create : Ipl_core.Ipl_engine.t -> t
val attach : Ipl_core.Ipl_engine.t -> heap_header:int -> index_header:int -> t
val heap_header : t -> int
val index_header : t -> int

val insert : t -> tx:Ipl_core.Ipl_engine.txn -> key:int -> Storage.Record.t -> (unit, string) result
(** Fails on duplicate keys and oversized rows. *)

val find : t -> int -> Storage.Record.t option
val mem : t -> int -> bool

val update : t -> tx:Ipl_core.Ipl_engine.txn -> key:int -> (Storage.Record.t -> Storage.Record.t) -> (bool, string) result
(** [Ok false] when the key is absent. *)

val delete : t -> tx:Ipl_core.Ipl_engine.txn -> key:int -> (bool, string) result

val next_key_ge : t -> int -> int option

val range : t -> lo:int -> hi:int -> (int * Storage.Record.t) list
(** Index-ordered rows with [lo <= key <= hi]. *)

val scan : t -> (Storage.Record.t -> unit) -> unit
(** Full heap scan in physical order (no index involvement). *)

val count : t -> int
(** Rows in the table (index scan). *)

val heap_pages : t -> int
