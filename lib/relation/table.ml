module Engine = Ipl_core.Ipl_engine
module B = Btree.Bptree
module Record = Storage.Record

type t = { heap : Heap.t; index : B.t }

let create engine = { heap = Heap.create engine; index = B.create engine }

let attach engine ~heap_header ~index_header =
  { heap = Heap.attach engine ~header:heap_header; index = B.attach engine ~header:index_header }

let heap_header t = Heap.header t.heap
let index_header t = B.header_page t.index

let insert t ~tx ~key row =
  if B.mem t.index key then Error "duplicate key"
  else
    match Heap.insert t.heap ~tx (Record.encode row) with
    | Error _ as e -> e |> Result.map (fun _ -> ())
    | Ok rid -> B.insert t.index ~tx ~key ~value:rid

let find_rowid t key = B.find t.index key

let find t key =
  match find_rowid t key with
  | None -> None
  | Some rid -> Option.map Record.decode (Heap.read t.heap rid)

let mem t key = B.mem t.index key

let update t ~tx ~key f =
  match find_rowid t key with
  | None -> Ok false
  | Some rid -> (
      match Heap.read t.heap rid with
      | None -> Ok false
      | Some data -> (
          match Heap.update t.heap ~tx rid (Record.encode (f (Record.decode data))) with
          | Ok () -> Ok true
          | Error _ as e -> Result.map (fun () -> true) e))

let delete t ~tx ~key =
  match find_rowid t key with
  | None -> Ok false
  | Some rid -> (
      match Heap.delete t.heap ~tx rid with
      | Error _ as e -> Result.map (fun () -> true) e
      | Ok () -> Result.map (fun () -> true) (B.delete t.index ~tx ~key))

let next_key_ge t key = Option.map fst (B.next_ge t.index key)

let range t ~lo ~hi =
  List.filter_map
    (fun (key, rid) -> Option.map (fun d -> (key, Record.decode d)) (Heap.read t.heap rid))
    (B.range t.index ~lo ~hi)

let scan t f = Heap.iter t.heap (fun _ data -> f (Record.decode data))

let count t = B.cardinal t.index
let heap_pages t = Heap.page_count t.heap
