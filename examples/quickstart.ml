(* Quickstart: a database engine that never overwrites a flash page.

   Run with: dune exec examples/quickstart.exe

   We create a simulated NAND chip, open an IPL engine on it, store and
   update records, and watch what reaches the flash: tiny log sectors
   instead of page rewrites, and an erase-unit merge once a log region
   fills up. Finally we "crash" and restart from the chip alone. *)

module Chip = Flash_sim.Flash_chip
module Config = Flash_sim.Flash_config
module Engine = Ipl_core.Ipl_engine
module Store = Ipl_core.Ipl_storage

let ok = function Ok v -> v | Error e -> failwith (Engine.error_to_string e)

let show_flash chip label =
  let s = Chip.stats chip in
  Printf.printf "  [flash after %-18s] page programs %5d, erases %3d, %s simulated I/O time\n"
    label s.Flash_sim.Flash_stats.page_writes s.Flash_sim.Flash_stats.block_erases
    (Format.asprintf "%a" Ipl_util.Size.pp_seconds s.Flash_sim.Flash_stats.elapsed)

let () =
  (* A 16 MB chip: 128 erase units of 128 KB. *)
  let chip = Chip.create (Config.default ~num_blocks:128 ()) in
  let engine = Engine.create chip in
  Printf.printf "Opened an IPL engine: 8 KB pages, each 128 KB erase unit = 15 data pages + 16 log sectors\n\n";

  (* Store a few records. *)
  let page = ok (Engine.allocate_page engine) in
  let alice = ok (Engine.insert engine ~tx:Engine.no_txn ~page (Bytes.of_string "alice: 100 points")) in
  let bob = ok (Engine.insert engine ~tx:Engine.no_txn ~page (Bytes.of_string "bob:    20 points")) in
  Printf.printf "Inserted two records into page %d (slots %d and %d)\n" page alice bob;
  show_flash chip "insert (buffered)";

  (* Update one of them many times: each change becomes a small
     physiological log record, flushed one 512-byte sector at a time. *)
  for score = 1 to 900 do
    ok (Engine.update engine ~tx:Engine.no_txn ~page ~slot:alice
          (Bytes.of_string (Printf.sprintf "alice: %3d points" score)))
  done;
  ok (Engine.checkpoint engine);
  show_flash chip "900 updates";
  let stats = (Engine.stats engine).Engine.storage in
  Printf.printf "  the engine wrote %d log sectors and merged %d erase units;\n"
    stats.Store.log_sector_writes stats.Store.merges;
  Printf.printf "  it never wrote back a dirty 8 KB page image.\n\n";

  (* Reads reconstruct the current version on the fly. *)
  Printf.printf "Read back: %S and %S\n"
    (Bytes.to_string (Option.get (ok (Engine.read engine ~page ~slot:alice))))
    (Bytes.to_string (Option.get (ok (Engine.read engine ~page ~slot:bob))));

  (* Crash. The only persistent state is the chip. *)
  Printf.printf "\nSimulating a crash (dropping all in-memory state)...\n";
  let engine', _ = Engine.restart chip in
  Printf.printf "After restart: %S and %S\n"
    (Bytes.to_string (Option.get (ok (Engine.read engine' ~page ~slot:alice))))
    (Bytes.to_string (Option.get (ok (Engine.read engine' ~page ~slot:bob))));
  Printf.printf "\nDone. See examples/recovery_demo.ml for transactions and examples/tpcc_demo.ml\n";
  Printf.printf "for a full OLTP workload on this engine.\n"
