(* A durable key-value store in ~60 lines on top of the relational layer.

   Run with: dune exec examples/kv_store.exe

   Shows that the stack generalises past TPC-C: `Relation.Table` (heap
   file + B+-tree) over the IPL engine gives you a crash-safe ordered KV
   store on raw NAND with no FTL underneath. String keys are hashed to
   the table's integer key space; collisions are resolved by storing the
   full key in the row. *)

module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module Engine = Ipl_core.Ipl_engine
module Table = Relation.Table
module Record = Storage.Record

let ok = function Ok v -> v | Error e -> failwith (Engine.error_to_string e)

let hash_key k = Hashtbl.hash k land 0x3FFFFFFF

let put table ~tx key value =
  let row = Record.[ S key; S value ] in
  match Table.update table ~tx ~key:(hash_key key) (fun _ -> row) with
  | Ok true -> ()
  | Ok false -> ( match Table.insert table ~tx ~key:(hash_key key) row with
                  | Ok () -> () | Error e -> failwith e)
  | Error e -> failwith e

let get table key =
  match Table.find table (hash_key key) with
  | Some row when Record.get_string row 0 = key -> Some (Record.get_string row 1)
  | _ -> None

let () =
  let chip = Chip.create (FConfig.default ~num_blocks:128 ()) in
  let engine = Engine.create chip in
  let kv = Table.create engine in

  Printf.printf "Putting 1000 keys...\n";
  for i = 1 to 1000 do
    put kv ~tx:Engine.no_txn (Printf.sprintf "user:%04d" i) (Printf.sprintf "name-%d" i)
  done;
  put kv ~tx:Engine.no_txn "user:0042" "douglas";
  Printf.printf "get user:0042 = %s\n" (Option.value ~default:"<none>" (get kv "user:0042"));
  Printf.printf "get user:0999 = %s\n" (Option.value ~default:"<none>" (get kv "user:0999"));
  Printf.printf "get missing   = %s\n" (Option.value ~default:"<none>" (get kv "nope"));

  Printf.printf "\nThe store sits directly on simulated NAND:\n";
  let s = Engine.stats engine in
  Printf.printf "  %d heap pages, %d entries, %d log sectors written, %d merges\n"
    (Table.heap_pages kv) (Table.count kv)
    s.Engine.storage.Ipl_core.Ipl_storage.log_sector_writes
    s.Engine.storage.Ipl_core.Ipl_storage.merges;

  ok (Engine.checkpoint engine);
  Printf.printf "\nCrash + restart...\n";
  let engine', _ = Engine.restart chip in
  let kv' =
    Table.attach engine' ~heap_header:(Table.heap_header kv)
      ~index_header:(Table.index_header kv)
  in
  Printf.printf "get user:0042 = %s (still there)\n"
    (Option.value ~default:"<none>"
       (match Table.find kv' (hash_key "user:0042") with
       | Some row -> Some (Record.get_string row 1)
       | None -> None));
  Printf.printf "entries after restart: %d\n" (Table.count kv')
