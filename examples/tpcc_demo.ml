(* TPC-C on the real IPL engine.

   Run with: dune exec examples/tpcc_demo.exe

   Loads a small TPC-C database (rows in slotted pages, one B+-tree per
   table) on a simulated flash chip, runs the standard transaction mix
   with transactional recovery enabled, prints what the storage layer did,
   and finally crash-restarts and checks the data is still there. *)

module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module Engine = Ipl_core.Ipl_engine
module Store = Ipl_core.Ipl_storage
module Schema = Tpcc.Tpcc_schema
module Txn = Tpcc.Tpcc_txn
module Estore = Tpcc.Tpcc_engine_store
module Record = Storage.Record
module E = Tpcc.Tpcc_driver.Engine_run

let () =
  let sizing = { Txn.mini_sizing with Txn.customers = 150; items = 600; orders = 80 } in
  Printf.printf
    "Loading TPC-C: %d warehouse, %d districts, %d customers/district, %d items...\n%!"
    sizing.Txn.warehouses sizing.Txn.districts sizing.Txn.customers sizing.Txn.items;
  let transactions = 2_000 in
  let run = E.run ~sizing ~chip_blocks:768 ~transactions () in
  let c = run.E.counts in
  Printf.printf "Ran %d transactions: %d new-order, %d payment, %d order-status, %d delivery, %d stock-level (%d rolled back)\n"
    transactions c.Txn.new_order c.Txn.payment c.Txn.order_status c.Txn.delivery
    c.Txn.stock_level c.Txn.rollbacks;

  let engine = run.E.engine in
  let s = Engine.stats engine in
  let st = s.Engine.storage in
  Printf.printf "\nStorage manager activity:\n";
  Printf.printf "  pages allocated        %8d\n" st.Store.pages_allocated;
  Printf.printf "  log sectors written    %8d\n" st.Store.log_sector_writes;
  Printf.printf "  erase-unit merges      %8d\n" st.Store.merges;
  Printf.printf "  overflow diversions    %8d\n" st.Store.overflow_diversions;
  Printf.printf "  aborted records purged %8d\n" st.Store.records_dropped_aborted;
  Printf.printf "  buffer pool: %d hits / %d misses\n" s.Engine.pool.Bufmgr.Buffer_pool.hits
    s.Engine.pool.Bufmgr.Buffer_pool.misses;
  Printf.printf "  flash: %s\n" (Format.asprintf "%a" Flash_sim.Flash_stats.pp s.Engine.flash);

  (* Inspect one row through the index. *)
  let store = run.E.store in
  let key = Schema.customer_key ~w:1 ~d:1 ~c:1 in
  (match Estore.lookup store Schema.Customer ~key with
  | Some row ->
      Printf.printf "\nCustomer (1,1,1): balance %.2f after %d payments\n"
        (Record.get_float row Schema.F.c_balance)
        (Record.get_int row Schema.F.c_payment_cnt)
  | None -> failwith "customer missing");

  (* Crash and restart: the whole database comes back from flash. *)
  Printf.printf "\nCrash-restarting from the chip...\n%!";
  let chip = Engine.chip engine in
  let config = Engine.config engine in
  let engine', aborted = Engine.restart ~config chip in
  Printf.printf "  %d in-flight transactions rolled back implicitly\n" (List.length aborted);
  (* Reattach the customer index by replaying the catalog: in this demo we
     simply re-open the raw row through the storage manager instead. *)
  let store' = Engine.storage engine' in
  Printf.printf "  recovered %d pages; customer row still readable: %b\n"
    (Ipl_core.Ipl_storage.num_pages store')
    (match Engine.read engine' ~page:0 ~slot:0 with Ok (Some _) -> true | _ -> false);
  Printf.printf "\nDone.\n"
