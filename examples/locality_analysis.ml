(* Workload analysis + IPL what-if, end to end.

   Run with: dune exec examples/locality_analysis.exe

   Generates a TPC-C update-reference trace (as a DBA would capture from a
   running server), characterises its locality the way Section 4.2.2 of
   the paper does, and then asks the Algorithm 2 simulator: how would an
   in-page-logging store handle this workload, across log-region sizes? *)

module Driver = Tpcc.Tpcc_driver
module Trace = Reftrace.Trace
module Locality = Reftrace.Locality
module Sim = Iplsim.Ipl_simulator
module Sweep = Iplsim.Sweep
module Cost = Iplsim.Cost_model
module Txn = Tpcc.Tpcc_txn

let () =
  Printf.printf "Generating a TPC-C trace (1 warehouse, 4 MB buffer pool)...\n%!";
  let sizing = { (Txn.spec_sizing ~warehouses:1) with Txn.customers = 600; items = 5_000; orders = 600 } in
  let r = Driver.generate_trace ~sizing ~warehouses:1 ~buffer_mb:4 ~users:10 ~transactions:8_000 () in
  let trace = r.Driver.trace in

  Printf.printf "\n-- What the server logged (cf. Table 4) --\n";
  Format.printf "%a@." Trace.pp_stats (Trace.stats trace);

  Printf.printf "\n-- Update locality (cf. Figure 4) --\n";
  let show label (s : Locality.skew) =
    Printf.printf "  %-28s gini %.3f; hottest key takes %d of %d refs; top-100 share %.1f%%\n"
      label s.Locality.gini
      (if Array.length s.Locality.top_counts > 0 then s.Locality.top_counts.(0) else 0)
      s.Locality.total
      (100.0 *. s.Locality.top_share)
  in
  show "log records per page" (Locality.log_reference_skew trace ~top:100);
  show "physical writes per page" (Locality.page_write_skew trace ~top:100);
  show "erases per erase unit" (Locality.erase_skew trace ~top:100 ~pages_per_eu:15);
  let w_pages = Locality.sliding_window_distinct trace ~window:16 `Pages in
  let w_eus = Locality.sliding_window_distinct trace ~window:16 (`Erase_units 15) in
  Printf.printf "  temporal locality: a window of 16 writes touches %.2f distinct pages and %.2f distinct erase units\n"
    w_pages w_eus;
  Printf.printf "  (almost none — which is exactly why update-in-place flash storage thrashes)\n";

  Printf.printf "\n-- IPL what-if (cf. Figures 5 and 6) --\n";
  Printf.printf "  %-12s %10s %10s %12s %10s\n" "log region" "merges" "sectors" "est. time" "DB size";
  List.iter
    (fun (p : Sweep.point) ->
      Printf.printf "  %8d KB %10d %10d %10.1f s %7d MB\n" (p.Sweep.log_region / 1024)
        p.Sweep.result.Sim.merges p.Sweep.result.Sim.sector_writes p.Sweep.t_ipl
        (p.Sweep.db_size / 1024 / 1024))
    (Sweep.log_region_sweep trace);
  let base = Sim.run trace in
  let conv = Cost.t_conv ~page_writes:base.Sim.page_write_events ~alpha:0.9 () in
  let ipl = Cost.t_ipl ~sector_writes:base.Sim.sector_writes ~merges:base.Sim.merges () in
  Printf.printf
    "\n  a conventional flash server would spend ~%.0f s on these writes; IPL ~%.0f s (%.0fx)\n"
    conv ipl (conv /. ipl)
