(* Transactional recovery the IPL way (Section 5 of the paper).

   Run with: dune exec examples/recovery_demo.exe

   The demo walks through the three recovery scenarios:
   1. commit, then crash  -> the change survives (no REDO pass needed:
      the read path applies committed log records on the fly);
   2. abort               -> in-memory rollback, flash records later
      dropped by selective merges;
   3. crash mid-transaction -> the restart writes an abort record and the
      zombie change is never seen again (no UNDO pass either). *)

module Chip = Flash_sim.Flash_chip
module FConfig = Flash_sim.Flash_config
module Engine = Ipl_core.Ipl_engine
module Config = Ipl_core.Ipl_config
module Trx_log = Ipl_core.Trx_log

let ok = function Ok v -> v | Error e -> failwith (Engine.error_to_string e)
let read engine ~page ~slot =
  match ok (Engine.read engine ~page ~slot) with
  | Some b -> Bytes.to_string b
  | None -> "<absent>"

let () =
  let config = { Config.default with Config.recovery_enabled = true; buffer_pages = 4 } in
  let chip = Chip.create (FConfig.default ~num_blocks:64 ()) in
  let engine = Engine.create ~config chip in
  let page = ok (Engine.allocate_page engine) in
  let slot = ok (Engine.insert engine ~tx:Engine.no_txn ~page (Bytes.of_string "balance=100")) in
  ok (Engine.checkpoint engine);
  Printf.printf "Initial state: %s\n\n" (read engine ~page ~slot);

  (* 1. Commit, then crash. *)
  let t1 = ok (Engine.begin_txn engine) in
  ok (Engine.update engine ~tx:t1 ~page ~slot (Bytes.of_string "balance=250"));
  ok (Engine.commit engine t1);
  Printf.printf "T%d committed an update to balance=250.\n" (Engine.txn_id t1);
  Printf.printf "CRASH (no checkpoint since the commit)...\n";
  let engine, _ = Engine.restart ~config chip in
  Printf.printf "after restart: %s   <- commit-time log forcing was enough\n\n"
    (read engine ~page ~slot);

  (* 2. Voluntary abort. *)
  let t2 = ok (Engine.begin_txn engine) in
  ok (Engine.update engine ~tx:t2 ~page ~slot (Bytes.of_string "balance=999"));
  Printf.printf "T%d updated balance to 999 (uncommitted): %s\n" (Engine.txn_id t2) (read engine ~page ~slot);
  ok (Engine.abort engine t2);
  Printf.printf "T%d aborted: %s   <- de-applied in memory, no I/O\n\n" (Engine.txn_id t2)
    (read engine ~page ~slot);

  (* 3. Crash mid-transaction, with the zombie's log records already
     forced to flash by buffer pressure. *)
  let t3 = ok (Engine.begin_txn engine) in
  ok (Engine.update engine ~tx:t3 ~page ~slot (Bytes.of_string "balance=666"));
  (* Evict the page so the uncommitted record reaches a flash log sector. *)
  let filler = List.init 6 (fun _ -> ok (Engine.allocate_page engine)) in
  List.iter (fun p -> ignore (ok (Engine.insert engine ~tx:Engine.no_txn ~page:p (Bytes.of_string "x")))) filler;
  Printf.printf "T%d updated balance to 666 and its log record reached flash.\n" (Engine.txn_id t3);
  Printf.printf "CRASH (T%d has no outcome record)...\n" (Engine.txn_id t3);
  let engine, aborted = Engine.restart ~config chip in
  Printf.printf "restart rolled back transactions %s\n"
    (String.concat ", " (List.map string_of_int aborted));
  Printf.printf "T%d status: %s\n" (Engine.txn_id t3)
    (match Engine.txn_status engine (Engine.txn_id t3) with
    | Trx_log.Aborted -> "aborted"
    | Trx_log.Committed -> "committed"
    | Trx_log.Active -> "active");
  Printf.printf "after restart: %s   <- the zombie record is filtered on read\n"
    (read engine ~page ~slot);
  Printf.printf "               and will be physically dropped at the next selective merge.\n";

  (* Show the drop happening. *)
  let slot2 = slot in
  for i = 1 to 400 do
    ok (Engine.update engine ~tx:Engine.no_txn ~page ~slot:slot2
          (Bytes.of_string (Printf.sprintf "balance=%03d" (i mod 1000))))
  done;
  ok (Engine.checkpoint engine);
  let st = (Engine.stats engine).Engine.storage in
  Printf.printf "\nAfter more work: %d merges ran, %d aborted record(s) physically dropped.\n"
    st.Ipl_core.Ipl_storage.merges st.Ipl_core.Ipl_storage.records_dropped_aborted;
  Printf.printf "Final state: %s\n" (read engine ~page ~slot)
